"""One config object, one entry point for every farm simulation.

The farm's knobs accreted across four surfaces --
:class:`~repro.farm.simulator.FarmSimulator` construction,
``run_sharded(...)``'s dozen keywords, the autoscale loop, and the CLI
flags -- and every new capability (fault plans, SLO targets) would
have widened all four.  :class:`FarmConfig` freezes the *description*
of a run (cores, scheduler, workload, sharding, faults, SLOs) into one
validated dataclass, and :func:`run_farm` is the single execution path
the CLI, the shard layer, the autoscale epochs, and the benchmark
scenarios all route through.  Runtime resources that are not part of
the run's identity (tracers, metric registries, executors) stay out of
the config and ride as keyword arguments.

The legacy entry points (``run_sharded``, ``simulate_autoscale``)
survive as deprecation shims that build a config and delegate here
bit-identically.
"""

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.obs import MetricsRegistry, Tracer
from repro.obs.slo import SloMonitor, SloReport, SloTarget
from repro.obs.timeseries import (DEFAULT_SERIES_CAPACITY,
                                  MetricsTimeSeries)
from repro.parallel import Executor
from repro.ssl.throughput import DEFAULT_CLOCK_HZ
from repro.costs import PlatformCosts
from repro.farm.faults import FaultPlan, FaultReport, summarize_faults
from repro.farm.metrics import FarmMetrics, summarize, window_metrics
from repro.farm.scheduler import SCHEDULERS
from repro.farm.shard import ShardedRun, _run_sharded
from repro.farm.simulator import CoreSpec, FarmResult, build_farm
from repro.farm.workload import SessionRequest, TrafficProfile

__all__ = ["FarmConfig", "FarmRun", "run_farm"]


@dataclass(frozen=True)
class FarmConfig:
    """Everything that shapes a farm run's results.

    Workload comes either from ``requests`` (an explicit or replayed
    stream) or from ``profile`` + ``n_requests`` (seeded generation);
    exactly the same choice ``run_sharded`` offered, now validated at
    construction instead of failing mid-run.  ``faults`` and ``slo``
    are both optional: a config without them describes exactly the
    pre-chaos simulation (and reproduces it byte for byte).
    """

    specs: Tuple[CoreSpec, ...]
    scheduler: str = "preferential"
    profile: Optional[TrafficProfile] = None
    n_requests: Optional[int] = None
    requests: Optional[Tuple[SessionRequest, ...]] = None
    shards: int = 1
    seed: int = 1
    jobs: Optional[int] = None
    clock_hz: float = DEFAULT_CLOCK_HZ
    cache_capacity: int = 128
    queue: str = "heap"
    faults: Optional[FaultPlan] = None
    slo: Optional[SloTarget] = None
    slo_window_seconds: float = 1.0
    #: Sample the run as a virtual-time series every this many
    #: (virtual) seconds; ``None`` (the default) records no series, so
    #: pre-series configs reproduce byte for byte.
    series_interval_seconds: Optional[float] = None
    series_capacity: int = DEFAULT_SERIES_CAPACITY

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))
        if self.requests is not None:
            object.__setattr__(self, "requests", tuple(self.requests))
        if not self.specs:
            raise ValueError("farm needs at least one core")
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; "
                f"known: {sorted(SCHEDULERS)}")
        # A config needs a workload source: an explicit stream, or a
        # profile to draw from.  n_requests may stay None for configs
        # consumed per-epoch (run_autoscale sizes each epoch itself);
        # run_farm requires it when generating.
        if self.requests is None and self.profile is None:
            raise ValueError(
                "need either requests= or profile= (+ n_requests=)")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.shards > len(self.specs):
            raise ValueError(
                f"cannot split {len(self.specs)} cores into "
                f"{self.shards} shards")
        if self.cache_capacity < 1:
            raise ValueError("cache_capacity must be positive")
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        if self.slo_window_seconds <= 0:
            raise ValueError("slo_window_seconds must be positive")
        if (self.series_interval_seconds is not None
                and self.series_interval_seconds <= 0):
            raise ValueError("series_interval_seconds must be positive")
        if self.series_capacity < 1:
            raise ValueError("series_capacity must be >= 1")

    @classmethod
    def build(cls, cores: int, base_costs: PlatformCosts,
              optimized_costs: PlatformCosts,
              extended_fraction: float = 0.5, **kwargs) -> "FarmConfig":
        """Construct a config over a freshly built heterogeneous farm
        (the :func:`~repro.farm.simulator.build_farm` shorthand)."""
        return cls(specs=tuple(build_farm(cores, base_costs,
                                          optimized_costs,
                                          extended_fraction)), **kwargs)

    def with_scheduler(self, scheduler: str) -> "FarmConfig":
        """The same run under a different policy (scheduler sweeps)."""
        return replace(self, scheduler=scheduler)


@dataclass
class FarmRun:
    """Everything :func:`run_farm` produced for one config."""

    config: FarmConfig
    sharded: ShardedRun
    metrics: FarmMetrics
    faults: Optional[FaultReport] = None
    slo: Optional[SloReport] = None
    #: The run's virtual-time series (only when the config asked for
    #: one via ``series_interval_seconds``), fault and SLO-alert
    #: events annotated.
    series: Optional[MetricsTimeSeries] = None

    @property
    def result(self) -> FarmResult:
        """The merged simulation result."""
        return self.sharded.result


def run_farm(config: FarmConfig, *, tracer: Optional[Tracer] = None,
             metrics: Optional[MetricsRegistry] = None,
             executor: Optional[Executor] = None) -> FarmRun:
    """Execute one described run: simulate, summarize, judge.

    The simulation itself is the shard engine (``shards=1`` is the
    plain in-process simulator, bit-identical to pre-config behavior).
    When the config carries a :class:`~repro.farm.faults.FaultPlan`
    the run is chaos-injected and the :class:`FarmRun` gains a fault
    report; when it carries an :class:`~repro.obs.slo.SloTarget` an
    :class:`~repro.obs.slo.SloMonitor` evaluates every
    ``slo_window_seconds`` window of the finished run and publishes
    ``farm.slo_*`` counters into ``metrics``.
    """
    sharded = _run_sharded(
        list(config.specs), config.scheduler, profile=config.profile,
        n_requests=config.n_requests, shards=config.shards,
        seed=config.seed, clock_hz=config.clock_hz,
        cache_capacity=config.cache_capacity, queue=config.queue,
        jobs=config.jobs, executor=executor, tracer=tracer,
        metrics=metrics,
        requests=(list(config.requests)
                  if config.requests is not None else None),
        faults=config.faults)
    result = sharded.result
    fault_report = (summarize_faults(result, config.faults)
                    if config.faults is not None else None)
    slo_report: Optional[SloReport] = None
    if config.slo is not None:
        monitor = SloMonitor(config.slo,
                             window_seconds=config.slo_window_seconds,
                             registry=metrics,
                             scheduler=result.scheduler_name)
        monitor.observe_all(
            window_metrics(result, config.slo_window_seconds))
        slo_report = monitor.finish()
    series: Optional[MetricsTimeSeries] = None
    if config.series_interval_seconds is not None:
        # Derived post hoc from the merged completion stream, so the
        # series is byte-identical for any worker count (and, at
        # shards=1, to live in-simulator sampling).
        from repro.farm.timeseries import series_of
        series = series_of(
            result, faults=config.faults, slo_report=slo_report,
            interval_seconds=config.series_interval_seconds,
            capacity=config.series_capacity)
    return FarmRun(config=config, sharded=sharded,
                   metrics=summarize(result), faults=fault_report,
                   slo=slo_report, series=series)
