"""Pending-event structures for the discrete-event simulator.

The farm engine is agnostic about *how* its future events are stored:
it pushes ``(time, kind, seq, core)`` tuples and pops them in total
lexicographic order.  This module supplies that surface as an
:class:`EventQueue` with two interchangeable implementations:

- :class:`HeapEventQueue` -- the classic binary heap (``heapq``), the
  default and the reference for pop-order semantics;
- :class:`CalendarEventQueue` -- Brown's calendar queue (CACM 1988), a
  time-wheel of sorted day buckets.  When event times are roughly
  uniform over a window (Poisson arrivals plus service completions --
  exactly the farm's traffic) both push and pop are amortized O(1)
  instead of the heap's O(log n), which is what matters once a 64-core
  shard keeps hundreds of completions in flight.

Both structures pop in the **identical total order**: events are
compared as whole tuples, so equal times fall back to the ``(kind,
seq, core)`` tie-break and two simulations differing only in queue
kind produce byte-identical results (property-tested in
``tests/test_shard.py`` and gated by ``BENCH_farm_events``).

The one contract beyond ordering: events may be pushed "into the past"
(before the last popped time); the calendar queue rewinds its scan
position so ordering still holds.  The farm simulator never does this
(completions are scheduled at ``now + service``), but the property
tests do.
"""

import heapq
from bisect import insort
from typing import Dict, List, Tuple, Type

__all__ = ["EVENT_QUEUES", "CalendarEventQueue", "EventQueue",
           "HeapEventQueue", "make_event_queue", "queue_kinds"]

#: Minimum calendar size; shrink resizes never go below this.
MIN_BUCKETS = 4

Event = Tuple  # (time, kind, seq, core) -- compared lexicographically


class EventQueue:
    """Total-order priority queue of event tuples."""

    kind = "abstract"

    def push(self, event: Event) -> None:
        raise NotImplementedError

    def pop(self) -> Event:
        """Remove and return the least event (tuple order); raises
        :class:`IndexError` when empty."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return len(self) > 0

    def stats(self) -> Dict[str, float]:
        """Deterministic operation counters (for the bench scenarios)."""
        return {}


class HeapEventQueue(EventQueue):
    """``heapq`` wrapper -- the reference ordering."""

    kind = "heap"

    def __init__(self):
        self._heap: List[Event] = []
        self.pushes = 0
        self.pops = 0

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, event)
        self.pushes += 1

    def pop(self) -> Event:
        event = heapq.heappop(self._heap)
        self.pops += 1
        return event

    def __len__(self) -> int:
        return len(self._heap)

    def stats(self) -> Dict[str, float]:
        return {"kind": self.kind, "pushes": float(self.pushes),
                "pops": float(self.pops)}


class CalendarEventQueue(EventQueue):
    """Calendar queue: a ring of ``bucket_width``-wide day buckets.

    An event at time ``t`` lives in bucket ``int(t / width) % count``,
    kept sorted by :func:`bisect.insort` so ties resolve in full tuple
    order.  ``pop`` scans at most one "year" (one lap of the ring) of
    windows ahead of the last popped event; a sparse queue falls back
    to one direct minimum search and jumps the calendar there.  The
    ring doubles when occupancy exceeds two events per bucket and
    halves below one per two buckets, re-deriving the bucket width
    from the average separation of the pending events (Brown's rule),
    so both scan length and in-bucket insertion stay O(1) amortized.

    All state transitions depend only on the pushed events, never on
    timing, so operation counters (:meth:`stats`) are byte-stable.
    """

    kind = "calendar"

    def __init__(self, bucket_count: int = MIN_BUCKETS,
                 bucket_width: float = 1.0):
        if bucket_count < 1:
            raise ValueError("bucket_count must be positive")
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        self._n = 0
        self.pushes = 0
        self.pops = 0
        self.scans = 0
        self.resizes = 0
        self.direct_searches = 0
        self._setup(bucket_count, float(bucket_width), 0.0)

    # -- internal layout ---------------------------------------------------

    def _setup(self, count: int, width: float, position: float) -> None:
        self._buckets: List[List[Event]] = [[] for _ in range(count)]
        self._count = count
        self._width = width
        # The scan position is an integer *day* (window index), not an
        # accumulated float top, so window bounds are computed fresh at
        # each step and never drift.
        self._day = self._day_of(position)

    def _day_of(self, time: float) -> int:
        return int(time / self._width)

    def _bucket_of(self, time: float) -> int:
        return self._day_of(time) % self._count

    def _resize(self, new_count: int) -> None:
        events: List[Event] = []
        for bucket in self._buckets:
            events.extend(bucket)
        events.sort()
        width = self._width
        if len(events) > 1:
            span = events[-1][0] - events[0][0]
            if span > 0:
                # ~three events per day keeps buckets short and scans
                # rarely empty (Brown's sizing rule).
                width = span / len(events) * 3.0
        self.resizes += 1
        self._setup(new_count, width, events[0][0] if events else 0.0)
        for event in events:           # sorted append keeps buckets sorted
            self._buckets[self._bucket_of(event[0])].append(event)

    # -- queue surface -----------------------------------------------------

    def push(self, event: Event) -> None:
        time = event[0]
        insort(self._buckets[self._bucket_of(time)], event)
        self._n += 1
        self.pushes += 1
        # A push into the calendar's past rewinds the scan so pop order
        # remains the total tuple order.
        if self._day_of(time) < self._day:
            self._day = self._day_of(time)
        if self._n > 2 * self._count:
            self._resize(2 * self._count)

    def pop(self) -> Event:
        if not self._n:
            raise IndexError("pop from empty event queue")
        day = self._day
        for _ in range(self._count):
            self.scans += 1
            bucket = self._buckets[day % self._count]
            if bucket and self._day_of(bucket[0][0]) <= day:
                event = bucket.pop(0)
                self._n -= 1
                self.pops += 1
                self._day = day
                if self._count > MIN_BUCKETS and self._n < self._count // 2:
                    self._resize(max(MIN_BUCKETS, self._count // 2))
                return event
            day += 1
        # A whole year scanned dry: jump to the earliest pending event
        # (its own day always matches, so the rescan hits immediately).
        self.direct_searches += 1
        earliest = min(bucket[0] for bucket in self._buckets if bucket)
        self._day = self._day_of(earliest[0])
        return self.pop()

    def __len__(self) -> int:
        return self._n

    def stats(self) -> Dict[str, float]:
        return {"kind": self.kind, "pushes": float(self.pushes),
                "pops": float(self.pops), "scans": float(self.scans),
                "resizes": float(self.resizes),
                "direct_searches": float(self.direct_searches),
                "buckets": float(self._count)}


EVENT_QUEUES: Dict[str, Type[EventQueue]] = {
    HeapEventQueue.kind: HeapEventQueue,
    CalendarEventQueue.kind: CalendarEventQueue,
}


def make_event_queue(kind: str = "heap", **kwargs) -> EventQueue:
    """Instantiate an event queue by registry name."""
    try:
        cls = EVENT_QUEUES[kind]
    except KeyError:
        raise ValueError(f"unknown event queue {kind!r}; "
                         f"known: {sorted(EVENT_QUEUES)}") from None
    return cls(**kwargs)


def queue_kinds() -> List[str]:
    return list(EVENT_QUEUES)
