"""A farm of security-processor cores serving mixed secure traffic.

The paper evaluates the platform one SSL transaction at a time, but its
objective is *sustained* secure traffic at 3G/WLAN rates -- and the
natural scale-out (Paul & Chakrabarti, arXiv:1410.7560) is to replicate
the security core and schedule crypto jobs across the replicas with a
preferential algorithm.  This package models exactly that step:

- :mod:`repro.farm.workload`  -- seeded generators of mixed-protocol
  session-request streams (SSL full/resumed, WTLS, IPSec ESP, WEP),
  costed in cycles through the existing platform cost models;
- :mod:`repro.farm.simulator` -- a deterministic discrete-event engine:
  event heap, per-core run queues, cycle-granular virtual clock;
- :mod:`repro.farm.scheduler` -- pluggable dispatch policies
  (round-robin, least-loaded, preferential with session-cache
  affinity);
- :mod:`repro.farm.metrics`   -- throughput, latency percentiles,
  utilization, and area-normalized throughput (an A-D style
  cores-vs-delay trade-off at the farm level);
- :mod:`repro.farm.capacity`  -- the capacity planner: how many cores
  of which configuration serve N users at rate R;
- :mod:`repro.farm.events`    -- pluggable pending-event structures
  (binary heap, Brown's calendar queue) behind one ``EventQueue``
  surface with identical pop order;
- :mod:`repro.farm.shard`     -- population sharding: independent
  per-shard PRNG streams, parallel per-shard simulations, an
  order-preserving merge (``shards=1`` is bit-identical to the plain
  simulator);
- :mod:`repro.farm.replay`    -- JSONL workload traces (export /
  import round-trips the exact request stream);
- :mod:`repro.farm.autoscale` -- the autoscaling capacity service:
  arrival curves, scale-out/in policies with warm-up costs, per-epoch
  SLO attainment;
- :mod:`repro.farm.timeseries` -- virtual-time metrics series of a
  run: a :class:`FarmSeriesRecorder` samples completion counters,
  windowed p99 / secure-throughput gauges, and latency histograms on
  a fixed cycle interval (live, or derived post hoc from any merged
  result), with fault and SLO-alert event annotations;
- :mod:`repro.farm.serve`     -- the soak service behind
  ``python -m repro farm --serve``: replays traffic epochs
  continuously and exposes ``/metrics`` (Prometheus text exposition,
  virtual-time timestamps), ``/healthz``, and ``/slo`` over HTTP.

Drive it from the command line with ``python -m repro farm``.
"""

from repro.obs.slo import (SloMonitor, SloObjective, SloReport,
                           SloTarget)
from repro.farm.autoscale import (ARRIVAL_CURVES, AutoscalePolicy,
                                  AutoscaleReport, EpochReport,
                                  arrival_multiplier, curve_names,
                                  run_autoscale, simulate_autoscale)
from repro.farm.capacity import (CapacityPlan, capacity_table,
                                 cores_for_rate, farm_rate_targets,
                                 plan_farm, specs_as_configs)
from repro.farm.config import FarmConfig, FarmRun, run_farm
from repro.farm.faults import (DEFAULT_REDISPATCH_PENALTY_CYCLES,
                               FAULT_KINDS, FaultEvent, FaultPlan,
                               FaultReport, generate_fault_plan,
                               summarize_faults)
from repro.farm.events import (EVENT_QUEUES, CalendarEventQueue,
                               EventQueue, HeapEventQueue,
                               make_event_queue, queue_kinds)
from repro.farm.metrics import (FarmMetrics, percentile, summarize,
                                window_metrics)
from repro.farm.replay import (WorkloadTrace, export_workload,
                               import_workload)
from repro.farm.scheduler import (SCHEDULERS, LeastLoadedScheduler,
                                  PreferentialScheduler,
                                  RoundRobinScheduler, Scheduler,
                                  make_scheduler)
from repro.farm.shard import (ShardedRun, merge_results, run_sharded,
                              shard_workload)
from repro.farm.simulator import (BASE_CORE_GATES, Completion, Core,
                                  CoreSpec, FarmResult, FarmSimulator,
                                  build_farm, publish_metrics)
from repro.farm.serve import FarmSoakService
from repro.farm.timeseries import (DEFAULT_SERIES_INTERVAL_SECONDS,
                                   FarmSeriesRecorder, annotate_faults,
                                   annotate_slo, series_of)
from repro.farm.workload import (RequestCost, SessionRequest,
                                 TrafficProfile, cost_of,
                                 generate_requests, is_public_key_heavy,
                                 session_id_for_client)

__all__ = [
    "ARRIVAL_CURVES", "BASE_CORE_GATES", "AutoscalePolicy",
    "AutoscaleReport", "CalendarEventQueue", "CapacityPlan",
    "Completion", "Core", "CoreSpec",
    "DEFAULT_REDISPATCH_PENALTY_CYCLES",
    "DEFAULT_SERIES_INTERVAL_SECONDS", "EVENT_QUEUES", "EpochReport",
    "EventQueue", "FAULT_KINDS", "FarmConfig", "FarmMetrics",
    "FarmResult", "FarmRun", "FarmSeriesRecorder", "FarmSimulator",
    "FarmSoakService", "FaultEvent", "FaultPlan", "FaultReport",
    "HeapEventQueue",
    "LeastLoadedScheduler", "PreferentialScheduler", "RequestCost",
    "RoundRobinScheduler", "SCHEDULERS", "Scheduler", "SessionRequest",
    "ShardedRun", "SloMonitor", "SloObjective", "SloReport",
    "SloTarget", "TrafficProfile", "WorkloadTrace",
    "annotate_faults", "annotate_slo", "arrival_multiplier",
    "build_farm", "capacity_table",
    "cores_for_rate", "cost_of", "curve_names", "export_workload",
    "farm_rate_targets", "generate_fault_plan", "generate_requests",
    "import_workload", "is_public_key_heavy", "make_event_queue",
    "make_scheduler", "merge_results", "percentile", "plan_farm",
    "publish_metrics", "queue_kinds", "run_autoscale", "run_farm",
    "run_sharded", "series_of", "session_id_for_client",
    "shard_workload",
    "specs_as_configs", "summarize", "summarize_faults",
    "window_metrics",
]
