"""A farm of security-processor cores serving mixed secure traffic.

The paper evaluates the platform one SSL transaction at a time, but its
objective is *sustained* secure traffic at 3G/WLAN rates -- and the
natural scale-out (Paul & Chakrabarti, arXiv:1410.7560) is to replicate
the security core and schedule crypto jobs across the replicas with a
preferential algorithm.  This package models exactly that step:

- :mod:`repro.farm.workload`  -- seeded generators of mixed-protocol
  session-request streams (SSL full/resumed, WTLS, IPSec ESP, WEP),
  costed in cycles through the existing platform cost models;
- :mod:`repro.farm.simulator` -- a deterministic discrete-event engine:
  event heap, per-core run queues, cycle-granular virtual clock;
- :mod:`repro.farm.scheduler` -- pluggable dispatch policies
  (round-robin, least-loaded, preferential with session-cache
  affinity);
- :mod:`repro.farm.metrics`   -- throughput, latency percentiles,
  utilization, and area-normalized throughput (an A-D style
  cores-vs-delay trade-off at the farm level);
- :mod:`repro.farm.capacity`  -- the capacity planner: how many cores
  of which configuration serve N users at rate R.

Drive it from the command line with ``python -m repro farm``.
"""

from repro.farm.capacity import (CapacityPlan, capacity_table,
                                 cores_for_rate, farm_rate_targets,
                                 plan_farm, specs_as_configs)
from repro.farm.metrics import FarmMetrics, percentile, summarize
from repro.farm.scheduler import (SCHEDULERS, LeastLoadedScheduler,
                                  PreferentialScheduler,
                                  RoundRobinScheduler, Scheduler,
                                  make_scheduler)
from repro.farm.simulator import (BASE_CORE_GATES, Completion, Core,
                                  CoreSpec, FarmResult, FarmSimulator,
                                  build_farm)
from repro.farm.workload import (RequestCost, SessionRequest,
                                 TrafficProfile, cost_of,
                                 generate_requests, is_public_key_heavy,
                                 session_id_for_client)

__all__ = [
    "BASE_CORE_GATES", "CapacityPlan", "Completion", "Core", "CoreSpec",
    "FarmMetrics", "FarmResult", "FarmSimulator", "LeastLoadedScheduler",
    "PreferentialScheduler", "RequestCost", "RoundRobinScheduler",
    "SCHEDULERS", "Scheduler", "SessionRequest", "TrafficProfile",
    "build_farm", "capacity_table", "cores_for_rate", "cost_of",
    "farm_rate_targets", "generate_requests", "is_public_key_heavy",
    "make_scheduler", "percentile", "plan_farm",
    "session_id_for_client", "specs_as_configs", "summarize",
]
