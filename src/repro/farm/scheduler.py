"""Dispatch policies for the security-core farm.

Three policies, mirroring the scale-out literature the farm models
(Paul & Chakrabarti's multi-core SSL/TLS processor with a preferential
scheduling algorithm, arXiv:1410.7560):

- **round-robin** -- the baseline: cores in rotation, blind to both
  load and job class.
- **least-loaded** -- shortest-backlog-first over the estimated
  outstanding cycles of each core.
- **preferential** -- class-aware: public-key-heavy jobs (full SSL and
  WTLS handshakes) go to TIE-extended cores, bulk-symmetric jobs (ESP,
  WEP, resumed SSL) to base cores, each class least-loaded within its
  preferred pool; resumed requests of any resumable registered
  protocol are first routed to the core whose session cache holds the
  client's key (cache affinity), so the abbreviated-handshake price is
  actually realized.
"""

from typing import Dict, List, Optional, Sequence, Type

from repro.farm.workload import SessionRequest, is_public_key_heavy
from repro.protocols import get_protocol


class Scheduler:
    """Base policy: picks a core index for each arriving request."""

    name = "abstract"

    def select(self, request: SessionRequest, cores: Sequence,
               now: float) -> int:
        raise NotImplementedError

    @staticmethod
    def _least_loaded(cores: Sequence, now: float,
                      indices: Optional[Sequence[int]] = None) -> int:
        """Smallest estimated backlog among the *live* candidates;
        lowest index breaks ties.  The simulator never dispatches with
        zero live cores, so the filtered pool is never empty when at
        least one candidate is up."""
        if indices is None:
            indices = range(len(cores))
        indices = [i for i in indices if cores[i].up]
        return min(indices, key=lambda i: (cores[i].backlog_cycles(now), i))

    @staticmethod
    def _affine_core(request: SessionRequest,
                     cores: Sequence) -> Optional[int]:
        """The *live* core whose session cache can resume this request
        (a failed core's cache is gone; affinity must fall back)."""
        if not request.resumed:
            return None
        model = get_protocol(request.protocol)
        if not model.resumable:
            return None
        key = model.cache_key(request.client_id)
        for core in cores:
            if core.up and core.knows_session(key, request.protocol):
                return core.index
        return None


class RoundRobinScheduler(Scheduler):
    """Cores in strict rotation."""

    name = "round-robin"

    def __init__(self):
        self._next = 0

    def select(self, request: SessionRequest, cores: Sequence,
               now: float) -> int:
        # Scan forward from the rotation pointer to the first live
        # core; with every core up this is exactly the historical
        # one-step rotation (same pointer advance, same picks).
        for offset in range(len(cores)):
            index = (self._next + offset) % len(cores)
            if cores[index].up:
                self._next += offset + 1
                return index
        raise RuntimeError("no live core to dispatch to")


class LeastLoadedScheduler(Scheduler):
    """Shortest estimated backlog first."""

    name = "least-loaded"

    def select(self, request: SessionRequest, cores: Sequence,
               now: float) -> int:
        return self._least_loaded(cores, now)


class PreferentialScheduler(Scheduler):
    """Class-aware routing with session-cache affinity.

    ``affinity=False`` disables the session-cache check (useful for
    ablating how much of the policy's win is affinity vs routing).
    """

    name = "preferential"

    def __init__(self, affinity: bool = True):
        self.affinity = affinity

    def select(self, request: SessionRequest, cores: Sequence,
               now: float) -> int:
        if self.affinity:
            affine = self._affine_core(request, cores)
            if affine is not None:
                return affine
        # A degraded extended core prices like a base core, so it
        # routes like one until it recovers.
        extended = [c.index for c in cores
                    if c.up and c.spec.extended and not c.degraded]
        base = [c.index for c in cores
                if c.up and not (c.spec.extended and not c.degraded)]
        preferred = extended if is_public_key_heavy(request) else base
        if not preferred:
            preferred = base or extended
        return self._least_loaded(cores, now, preferred)


SCHEDULERS: Dict[str, Type[Scheduler]] = {
    RoundRobinScheduler.name: RoundRobinScheduler,
    LeastLoadedScheduler.name: LeastLoadedScheduler,
    PreferentialScheduler.name: PreferentialScheduler,
}


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a policy by registry name."""
    try:
        cls = SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; known: {sorted(SCHEDULERS)}")
    return cls(**kwargs)


def scheduler_names() -> List[str]:
    return list(SCHEDULERS)
