"""Autoscaling capacity service: epoch-driven farm sizing under SLOs.

The static planner (:mod:`repro.farm.capacity`) answers "how many
cores for rate R" with a closed-form ceiling.  Real populations do not
offer rate R -- they breathe (diurnal load curves) and spike (flash
crowds), and a farm provisioned for the peak idles through the trough.
This module simulates the control loop an operator would run instead:
virtual time advances in *epochs*; each epoch draws its own traffic
from a deterministic per-epoch PRNG fork at a rate shaped by an
arrival curve, runs it through the event-driven simulator on the
currently active cores, and then a scale-out/scale-in policy reacts to
measured utilization and SLO attainment (p99 latency, secure Mbps).
Scale-out pays a *warm-up cost*: new cores join the active set only
``warmup_epochs`` later, so a reactive policy visibly lags a burst --
exactly the behavior that motivates over-provisioning headroom.

Everything runs on the virtual clock; reports are byte-stable
functions of ``(profile, policy, slo, curve, epochs, seed)``.
"""

import math
import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.mp import DeterministicPrng
from repro.obs.slo import SloTarget as _SloTarget
from repro.obs.timeseries import MetricsTimeSeries
from repro.ssl.throughput import DEFAULT_CLOCK_HZ
from repro.farm.faults import FaultPlan
from repro.farm.metrics import percentile
from repro.farm.simulator import CoreSpec
from repro.farm.workload import TrafficProfile, _generate_stream

__all__ = ["ARRIVAL_CURVES", "AutoscalePolicy", "AutoscaleReport",
           "EpochReport", "SloTarget", "arrival_multiplier",
           "curve_names", "run_autoscale", "simulate_autoscale"]


def __getattr__(name: str):
    if name == "SloTarget":
        # Promoted to the shared SLO vocabulary in repro.obs.slo; the
        # old import path keeps working with a nudge.
        warnings.warn(
            "repro.farm.autoscale.SloTarget moved to "
            "repro.obs.slo.SloTarget; import it from repro.obs.slo "
            "(or repro.farm) instead",
            DeprecationWarning, stacklevel=2)
        return _SloTarget
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


def _constant(epoch: int, n_epochs: int) -> float:
    return 1.0


def _diurnal(epoch: int, n_epochs: int) -> float:
    """One full day across the run: trough at epoch 0, peak mid-run
    (1 -+ 0.5 cosine swing)."""
    return 1.0 - 0.5 * math.cos(2.0 * math.pi * epoch / n_epochs)


def _bursty(epoch: int, n_epochs: int) -> float:
    """Quiet baseline with a 3x flash crowd every eighth epoch
    (deterministic burst schedule, not a random one)."""
    return 3.0 if epoch % 8 == 4 else 0.6


#: Arrival-curve registry: multiplier(epoch, n_epochs) on the profile's
#: base rate.
ARRIVAL_CURVES = {"constant": _constant, "diurnal": _diurnal,
                  "bursty": _bursty}


def curve_names() -> List[str]:
    return list(ARRIVAL_CURVES)


def arrival_multiplier(curve: str, epoch: int, n_epochs: int) -> float:
    """The rate multiplier of ``curve`` at ``epoch`` of ``n_epochs``."""
    try:
        fn = ARRIVAL_CURVES[curve]
    except KeyError:
        raise ValueError(f"unknown arrival curve {curve!r}; "
                         f"known: {sorted(ARRIVAL_CURVES)}") from None
    return fn(epoch, n_epochs)


@dataclass(frozen=True)
class AutoscalePolicy:
    """Reactive scaling rules with hysteresis and warm-up lag.

    Scale out when measured utilization exceeds ``target_utilization``
    *or* the SLO is missed; the new cores become active after
    ``warmup_epochs``.  Scale in only below ``scale_in_utilization``
    with the SLO met and no scaling action within
    ``cooldown_epochs`` -- the asymmetry (eager out, reluctant in) is
    the standard guard against flapping.
    """

    min_cores: int = 1
    max_cores: int = 64
    target_utilization: float = 0.7
    scale_in_utilization: float = 0.3
    scale_out_step: int = 2
    scale_in_step: int = 1
    warmup_epochs: int = 1
    cooldown_epochs: int = 2

    def __post_init__(self):
        if self.min_cores < 1:
            raise ValueError("min_cores must be >= 1")
        if self.max_cores < self.min_cores:
            raise ValueError("max_cores must be >= min_cores")
        if not 0 < self.target_utilization <= 1:
            raise ValueError("target_utilization must be in (0, 1]")
        if not 0 <= self.scale_in_utilization < self.target_utilization:
            raise ValueError("scale_in_utilization must be in "
                             "[0, target_utilization)")
        if self.scale_out_step < 1 or self.scale_in_step < 1:
            raise ValueError("scale steps must be >= 1")
        if self.warmup_epochs < 0 or self.cooldown_epochs < 0:
            raise ValueError("warmup/cooldown epochs must be >= 0")

    def as_dict(self) -> Dict:
        return {
            "min_cores": self.min_cores, "max_cores": self.max_cores,
            "target_utilization": self.target_utilization,
            "scale_in_utilization": self.scale_in_utilization,
            "scale_out_step": self.scale_out_step,
            "scale_in_step": self.scale_in_step,
            "warmup_epochs": self.warmup_epochs,
            "cooldown_epochs": self.cooldown_epochs,
        }


@dataclass
class EpochReport:
    """One epoch of the control loop."""

    epoch: int
    rate_multiplier: float
    offered_rate: float          # sessions/s this epoch
    offered: int
    completed: int
    active_cores: int
    warming_cores: int
    utilization: float           # busy cycles / (active * epoch cycles)
    p99_ms: float
    secure_mbps: float
    slo_met: bool
    action: str                  # scale_out | scale_in | hold
    #: Objectives breached this epoch (0 when the SLO was met).
    slo_violations: int = 0
    #: Cores the epoch's fault plan left dead at the epoch boundary;
    #: they leave the active set and the policy must replace them.
    failed_cores: int = 0

    def as_dict(self) -> Dict:
        return {
            "epoch": self.epoch,
            "rate_multiplier": self.rate_multiplier,
            "offered_rate": self.offered_rate,
            "offered": self.offered,
            "completed": self.completed,
            "active_cores": self.active_cores,
            "warming_cores": self.warming_cores,
            "utilization": self.utilization,
            "p99_ms": self.p99_ms,
            "secure_mbps": self.secure_mbps,
            "slo_met": self.slo_met,
            "slo_violations": self.slo_violations,
            "failed_cores": self.failed_cores,
            "action": self.action,
        }


@dataclass
class AutoscaleReport:
    """The whole run: per-epoch rows plus capacity/attainment totals."""

    curve: str
    scheduler: str
    policy: AutoscalePolicy
    slo: _SloTarget
    epoch_seconds: float
    epochs: List[EpochReport] = field(default_factory=list)
    #: Epoch-granularity time series of the control loop (one sample
    #: per epoch boundary, scale actions and core failures annotated).
    #: Not serialized by :meth:`as_dict` -- the epoch rows already
    #: carry the same numbers; export it with
    #: :func:`repro.obs.timeseries.write_series_jsonl`.
    series: Optional[MetricsTimeSeries] = None

    @property
    def peak_cores(self) -> int:
        return max((e.active_cores for e in self.epochs), default=0)

    @property
    def mean_cores(self) -> float:
        if not self.epochs:
            return 0.0
        return sum(e.active_cores for e in self.epochs) / len(self.epochs)

    @property
    def core_epochs(self) -> int:
        """Capacity bill: active core-epochs summed over the run."""
        return sum(e.active_cores for e in self.epochs)

    @property
    def slo_violations(self) -> int:
        return sum(1 for e in self.epochs if not e.slo_met)

    @property
    def core_failures(self) -> int:
        """Cores lost to faults across the run (replaced by scaling)."""
        return sum(e.failed_cores for e in self.epochs)

    @property
    def scale_outs(self) -> int:
        return sum(1 for e in self.epochs if e.action == "scale_out")

    @property
    def scale_ins(self) -> int:
        return sum(1 for e in self.epochs if e.action == "scale_in")

    def as_dict(self) -> Dict:
        return {
            "curve": self.curve,
            "scheduler": self.scheduler,
            "policy": self.policy.as_dict(),
            "slo": self.slo.as_dict(),
            "epoch_seconds": self.epoch_seconds,
            "peak_cores": self.peak_cores,
            "mean_cores": self.mean_cores,
            "core_epochs": self.core_epochs,
            "slo_violations": self.slo_violations,
            "core_failures": self.core_failures,
            "scale_outs": self.scale_outs,
            "scale_ins": self.scale_ins,
            "epochs": [e.as_dict() for e in self.epochs],
        }


def run_autoscale(config, policy: AutoscalePolicy = None,
                  n_epochs: int = 24, epoch_seconds: float = 2.0,
                  curve: str = "diurnal") -> AutoscaleReport:
    """Run the autoscaling control loop over ``n_epochs`` epochs.

    ``config`` is a :class:`repro.farm.config.FarmConfig` whose
    ``specs`` are the *pool* the policy may draw from (``max_cores``
    is clamped to its size) and whose ``profile``/``seed``/``queue``
    shape the traffic; each epoch routes the first ``active_cores``
    specs and that epoch's stream through
    :func:`repro.farm.config.run_farm`.  Measured utilization and SLO
    attainment (``config.slo``) drive the policy, and scale-outs land
    after the warm-up lag.  Epoch workloads come from
    ``DeterministicPrng(seed).fork(f"epoch[{e}]")``, so any epoch's
    traffic is independent of every other's and of the policy's
    decisions.

    With a fault plan on the config, each epoch injects the plan's
    ``[epoch * epoch_cycles, (epoch+1) * epoch_cycles)`` window
    (rebased to the epoch clock); cores the window leaves dead at the
    epoch boundary are *removed* from the active set -- failures
    consume capacity, and replacing it costs the policy a scale-out
    plus the warm-up lag, exactly like absorbing a burst.
    """
    from repro.farm.config import run_farm
    if policy is None:
        policy = AutoscalePolicy()
    slo = config.slo if config.slo is not None else _SloTarget()
    if n_epochs < 1:
        raise ValueError("n_epochs must be >= 1")
    if epoch_seconds <= 0:
        raise ValueError("epoch_seconds must be positive")
    if config.profile is None:
        raise ValueError("autoscale needs a config with a profile")
    specs = config.specs
    profile = config.profile
    clock_hz = config.clock_hz
    max_cores = min(policy.max_cores, len(specs))
    active = min(policy.min_cores, max_cores)
    warming: List[List[int]] = []    # [ready_epoch, count] pairs
    cooldown = 0
    root = DeterministicPrng(config.seed)
    epoch_cycles = epoch_seconds * clock_hz
    report = AutoscaleReport(curve=curve, scheduler=config.scheduler,
                             policy=policy, slo=slo,
                             epoch_seconds=epoch_seconds,
                             series=MetricsTimeSeries(
                                 clock_hz=clock_hz,
                                 interval_cycles=epoch_cycles,
                                 capacity=max(1, n_epochs)))
    for epoch in range(n_epochs):
        # Warm cores ordered before this epoch come online now.
        ready = sum(count for ready_epoch, count in warming
                    if ready_epoch <= epoch)
        warming = [entry for entry in warming if entry[0] > epoch]
        active = min(max_cores, active + ready)
        multiplier = arrival_multiplier(curve, epoch, n_epochs)
        rate = profile.arrival_rate * multiplier
        offered = max(1, round(rate * epoch_seconds))
        requests = _generate_stream(profile, offered,
                                    root.fork(f"epoch[{epoch}]"), rate,
                                    clock_hz)
        epoch_faults = (config.faults.window(epoch * epoch_cycles,
                                             (epoch + 1) * epoch_cycles)
                        if config.faults is not None else None)
        run = run_farm(replace(
            config, specs=tuple(specs[:active]),
            requests=tuple(requests), shards=1, jobs=None,
            faults=epoch_faults, slo=None))
        result = run.result
        busy = sum(core.busy_cycles for core in result.cores)
        utilization = busy / (active * epoch_cycles)
        latencies_ms = [c.latency_cycles / clock_hz * 1e3
                        for c in result.completions]
        p99_ms = percentile(latencies_ms, 99)
        payload_bits = sum(c.request.size_bytes * 8
                           for c in result.completions)
        # Rates are charged to the epoch wall, not the makespan: a
        # farm that needs longer than the epoch to drain its traffic
        # is failing to keep up, and the Mbps figure should say so.
        secure_mbps = payload_bits / epoch_seconds / 1e6
        sample = {"p99_ms": p99_ms, "secure_mbps": secure_mbps,
                  "utilization": utilization}
        hits = sum(c.hits for core in result.cores
                   for c in core.caches.values())
        misses = sum(c.misses for core in result.cores
                     for c in core.caches.values())
        if hits + misses:
            sample["cache_hit_rate"] = hits / (hits + misses)
        violated = slo.violations(sample)
        slo_met = not violated
        failed = sum(1 for core in result.cores if not core.up)
        committed = active + sum(count for _, count in warming)
        action = "hold"
        if ((utilization > policy.target_utilization or not slo_met)
                and committed < max_cores):
            step = min(policy.scale_out_step, max_cores - committed)
            warming.append([epoch + policy.warmup_epochs, step])
            cooldown = policy.cooldown_epochs
            action = "scale_out"
        elif (utilization < policy.scale_in_utilization and slo_met
                and cooldown == 0 and not warming
                and active > policy.min_cores):
            active = max(policy.min_cores,
                         active - policy.scale_in_step)
            cooldown = policy.cooldown_epochs
            action = "scale_in"
        else:
            cooldown = max(0, cooldown - 1)
        if failed:
            # Dead hardware leaves the fleet; the policy has to win
            # the capacity back through the normal scale-out path.
            active = max(1, active - failed)
        report.epochs.append(EpochReport(
            epoch=epoch, rate_multiplier=multiplier, offered_rate=rate,
            offered=offered, completed=len(result.completions),
            active_cores=active,
            warming_cores=sum(count for _, count in warming),
            utilization=utilization, p99_ms=p99_ms,
            secure_mbps=secure_mbps, slo_met=slo_met, action=action,
            slo_violations=len(violated), failed_cores=failed))
        # One sample per epoch boundary on the virtual clock: the
        # over-time view of the warm-up lag the epoch table tabulates.
        boundary = (epoch + 1) * epoch_cycles
        report.series.append(boundary, {
            "autoscale.active_cores": float(active),
            "autoscale.warming_cores": float(
                sum(count for _, count in warming)),
            "autoscale.offered_rate": rate,
            "autoscale.offered": float(offered),
            "autoscale.completed": float(len(result.completions)),
            "autoscale.utilization": utilization,
            "autoscale.p99_ms": p99_ms,
            "autoscale.secure_mbps": secure_mbps,
            "autoscale.slo_met": float(slo_met),
        })
        if action != "hold":
            report.series.annotate(boundary, f"autoscale.{action}",
                                   epoch=epoch, active_cores=active)
        if failed:
            report.series.annotate(boundary, "autoscale.core_failure",
                                   epoch=epoch, failed=failed)
    return report


def simulate_autoscale(specs: Sequence[CoreSpec], scheduler_name: str,
                       profile: TrafficProfile,
                       policy: AutoscalePolicy = None,
                       slo: Optional[_SloTarget] = None,
                       n_epochs: int = 24, epoch_seconds: float = 2.0,
                       curve: str = "diurnal", seed: int = 1,
                       clock_hz: float = DEFAULT_CLOCK_HZ,
                       queue: str = "heap",
                       faults: Optional[FaultPlan] = None
                       ) -> AutoscaleReport:
    """Deprecated: build a :class:`repro.farm.config.FarmConfig` and
    call :func:`run_autoscale` instead (same report, bit for bit)."""
    warnings.warn(
        "simulate_autoscale(...) is deprecated; build a FarmConfig "
        "and call repro.farm.run_autoscale(config, ...) instead",
        DeprecationWarning, stacklevel=2)
    from repro.farm.config import FarmConfig
    config = FarmConfig(specs=tuple(specs), scheduler=scheduler_name,
                        profile=profile, seed=seed, clock_hz=clock_hz,
                        queue=queue, faults=faults, slo=slo)
    return run_autoscale(config, policy=policy, n_epochs=n_epochs,
                         epoch_seconds=epoch_seconds, curve=curve)
