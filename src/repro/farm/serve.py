"""The soak service behind ``python -m repro farm --serve``.

Everything else in the repo runs a workload and exits; a soak run is
the opposite posture -- keep the farm under load indefinitely and let
an external scraper watch it.  :class:`FarmSoakService` replays
traffic epoch after epoch (each epoch's stream drawn from
``DeterministicPrng(seed).fork(f"epoch[{e}]")``, exactly the autoscale
loop's convention, so epoch ``e`` serves identical traffic on every
soak of the same config) and exposes the accumulated state over HTTP:

- ``GET /metrics``  -- the shared registry in Prometheus text
  exposition format, every sample line stamped with the *virtual*
  epoch-wall time in milliseconds (a scraper graphs simulation time,
  not wall time);
- ``GET /healthz``  -- liveness JSON: epochs served, virtual seconds,
  series depth;
- ``GET /slo``      -- the persistent :class:`~repro.obs.slo
  .SloMonitor`'s report so far (per-window attainment included);
- ``POST /quit``    -- stop the epoch loop (how CI shuts the smoke
  run down without killing the process).

Per-epoch series are stitched onto one soak timeline with
:meth:`~repro.obs.timeseries.MetricsTimeSeries.merge` (timestamps
rebased by the epoch offset), so ``--series-out`` of a soak run is the
same artifact a one-shot chaos run exports, just longer.

The HTTP server is a stdlib :class:`~http.server.ThreadingHTTPServer`
on a daemon thread; the epoch loop stays on the calling thread.  A
lock guards the handoff: handlers render from the last *committed*
epoch, never from a simulation in flight.
"""

import json
import threading
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.mp import DeterministicPrng
from repro.obs.export import render_metrics
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloMonitor
from repro.obs.timeseries import (DEFAULT_SERIES_CAPACITY,
                                  MetricsTimeSeries)
from repro.farm.metrics import window_metrics
from repro.farm.timeseries import DEFAULT_SERIES_INTERVAL_SECONDS
from repro.farm.workload import _generate_stream

__all__ = ["FarmSoakService"]


class FarmSoakService:
    """Continuous epoch replay plus the scrape endpoints over it.

    ``config`` is a :class:`~repro.farm.config.FarmConfig` with a
    ``profile`` (each epoch generates ``arrival_rate * epoch_seconds``
    requests from it); its ``faults`` plan, if any, is windowed per
    epoch exactly like the autoscale loop, so a plan written against
    the soak timeline injects each event in the epoch that owns it.
    """

    def __init__(self, config, epoch_seconds: float = 2.0,
                 series_interval_seconds: float =
                 DEFAULT_SERIES_INTERVAL_SECONDS,
                 series_capacity: int = DEFAULT_SERIES_CAPACITY):
        if epoch_seconds <= 0:
            raise ValueError("epoch_seconds must be positive")
        if series_interval_seconds <= 0:
            raise ValueError("series_interval_seconds must be positive")
        if config.profile is None:
            raise ValueError("soak serving needs a config with a "
                             "profile (epochs generate their own "
                             "streams)")
        self.config = config
        self.epoch_seconds = epoch_seconds
        self.series_interval_seconds = series_interval_seconds
        self.epoch_cycles = epoch_seconds * config.clock_hz
        self.registry = MetricsRegistry()
        self.series = MetricsTimeSeries(
            clock_hz=config.clock_hz,
            interval_cycles=series_interval_seconds * config.clock_hz,
            capacity=series_capacity)
        self.monitor: Optional[SloMonitor] = (
            SloMonitor(config.slo,
                       window_seconds=config.slo_window_seconds,
                       registry=self.registry,
                       scheduler=config.scheduler)
            if config.slo is not None else None)
        self.epochs = 0
        self._root = DeterministicPrng(config.seed)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- the epoch loop --------------------------------------------------

    @property
    def virtual_cycles(self) -> float:
        """Committed virtual time: epochs are charged their full wall
        (an overloaded epoch that needs longer to drain is *late*, not
        time-dilating)."""
        return self.epochs * self.epoch_cycles

    @property
    def virtual_seconds(self) -> float:
        return self.virtual_cycles / self.config.clock_hz

    def run_epoch(self) -> None:
        """Simulate one epoch and commit its metrics, windows, and
        series onto the soak timeline."""
        from repro.farm.config import run_farm
        epoch = self.epochs
        profile = self.config.profile
        rate = profile.arrival_rate
        offered = max(1, round(rate * self.epoch_seconds))
        requests = _generate_stream(profile, offered,
                                    self._root.fork(f"epoch[{epoch}]"),
                                    rate, self.config.clock_hz)
        start = epoch * self.epoch_cycles
        epoch_faults = (self.config.faults.window(
            start, start + self.epoch_cycles)
            if self.config.faults is not None else None)
        run = run_farm(
            replace(self.config, requests=tuple(requests), shards=1,
                    jobs=None, faults=epoch_faults, slo=None,
                    series_interval_seconds=self.series_interval_seconds),
            metrics=self.registry)
        windows = (window_metrics(run.result,
                                  self.config.slo_window_seconds)
                   if self.monitor is not None else [])
        with self._lock:
            if self.monitor is not None:
                for window in (self.monitor.observe(sample)
                               for sample in windows):
                    if window.violations:
                        self.series.annotate(
                            start + window.end_s * self.config.clock_hz,
                            "slo.alert", epoch=epoch,
                            window=window.index,
                            metrics=list(window.violations))
            if run.series is not None:
                self.series.merge(run.series, offset_cycles=start)
            self.series.annotate(start + self.epoch_cycles,
                                 "soak.epoch", epoch=epoch,
                                 completed=len(run.result.completions))
            self.epochs += 1

    def run(self, max_epochs: Optional[int] = None,
            grace_seconds: float = 0.0) -> int:
        """Replay epochs until stopped (or ``max_epochs``), then
        linger ``grace_seconds`` of wall time for late scrapers;
        returns the number of epochs served."""
        while not self._stop.is_set() and (max_epochs is None
                                           or self.epochs < max_epochs):
            self.run_epoch()
        if grace_seconds > 0:
            self._stop.wait(grace_seconds)
        return self.epochs

    def stop(self) -> None:
        """Ask the epoch loop to exit after the epoch in flight."""
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    # -- the scrape endpoints --------------------------------------------

    def render_prometheus(self) -> str:
        """The shared registry in text exposition format, stamped with
        the committed virtual time in milliseconds."""
        with self._lock:
            stamp_ms = int(self.virtual_seconds * 1e3)
            return render_metrics(self.registry, format="prometheus",
                                  timestamp_ms=stamp_ms)

    def health(self) -> dict:
        with self._lock:
            return {"status": "ok", "epochs": self.epochs,
                    "virtual_seconds": self.virtual_seconds,
                    "samples": len(self.series.samples),
                    "events": len(self.series.events),
                    "stopping": self._stop.is_set()}

    def slo_payload(self) -> dict:
        with self._lock:
            if self.monitor is None:
                return {"slo": None}
            return self.monitor.report.as_dict()

    def serve(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Start the HTTP endpoints on a daemon thread; returns the
        bound port (``port=0`` picks a free one)."""
        if self._server is not None:
            raise RuntimeError("already serving")
        service = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args):    # silence per-request noise
                pass

            def _reply(self, body: str, content_type: str,
                       status: int = 200):
                payload = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def do_GET(self):
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    self._reply(service.render_prometheus() + "\n",
                                "text/plain; version=0.0.4")
                elif path == "/healthz":
                    self._reply(json.dumps(service.health(),
                                           sort_keys=True) + "\n",
                                "application/json")
                elif path == "/slo":
                    self._reply(json.dumps(service.slo_payload(),
                                           sort_keys=True) + "\n",
                                "application/json")
                else:
                    self._reply("not found\n", "text/plain", 404)

            def do_POST(self):
                if self.path.split("?", 1)[0] == "/quit":
                    service.stop()
                    self._reply("stopping\n", "text/plain")
                else:
                    self._reply("not found\n", "text/plain", 404)

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-soak-http",
                                        daemon=True)
        self._thread.start()
        return self._server.server_address[1]

    def shutdown(self) -> None:
        """Tear the HTTP server down (idempotent)."""
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
            self._thread = None
