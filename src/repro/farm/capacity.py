"""Capacity planning: cores needed to serve N users at rate R.

Extends the single-core feasibility question of
:mod:`repro.ssl.throughput` ("can this platform sustain 3G rates?") to
the farm: the per-core ceiling comes from
:func:`repro.ssl.throughput.max_secure_rate`, aggregate demand from a
user population with an activity factor (of a million subscribers only
a few percent hold active secure sessions at any instant), and the
planner reports, per core configuration, how many replicas meet the
demand and at what total gate cost -- so "serve a million users" gets
the same area-vs-performance treatment as a custom instruction.
"""

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.costs import PlatformCosts
from repro.ssl.throughput import (DEFAULT_CLOCK_HZ, RATE_TARGETS,
                                  max_secure_rate)
from repro.farm.simulator import CoreSpec

#: Fraction of a subscriber population with an active secure session
#: at the busy instant (classic teletraffic sizing assumption).
DEFAULT_ACTIVITY_FACTOR = 0.02

#: Representative populations for the aggregate targets table.
USER_POPULATIONS = (1_000, 100_000, 1_000_000)


def farm_rate_targets(per_user_targets: Dict[str, float] = None,
                      populations: Sequence[int] = USER_POPULATIONS,
                      activity_factor: float = DEFAULT_ACTIVITY_FACTOR
                      ) -> Dict[str, float]:
    """Aggregate farm targets from the paper's per-user RATE_TARGETS.

    Each entry is ``active_users * per_user_rate`` for ``active_users
    = population * activity_factor`` -- e.g. a million 3G-low
    subscribers at 2% activity demand 20,000 x 384 kbps of sustained
    secure throughput from the farm.
    """
    if per_user_targets is None:
        per_user_targets = RATE_TARGETS
    if not 0 < activity_factor <= 1:
        raise ValueError("activity_factor must be in (0, 1]")
    targets = {}
    for population in populations:
        for name, rate in per_user_targets.items():
            active = population * activity_factor
            targets[f"{population:,} users x {name}"] = active * rate
    return targets


def cores_for_rate(costs: PlatformCosts, target_bps: float,
                   clock_hz: float = DEFAULT_CLOCK_HZ,
                   cpu_fraction: float = 1.0) -> int:
    """Minimum cores of one configuration sustaining ``target_bps``."""
    if target_bps < 0:
        raise ValueError("target_bps must be non-negative")
    if target_bps == 0:
        return 0
    per_core = max_secure_rate(costs, clock_hz, cpu_fraction)
    return math.ceil(target_bps / per_core)


@dataclass
class CapacityPlan:
    """One (target, configuration) sizing answer."""

    target_name: str
    target_bps: float
    config_name: str
    cores: int
    per_core_bps: float
    farm_gates: float

    def as_dict(self) -> Dict:
        return {
            "target": self.target_name,
            "target_bps": self.target_bps,
            "config": self.config_name,
            "cores": self.cores,
            "per_core_bps": self.per_core_bps,
            "farm_gates": self.farm_gates,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CapacityPlan":
        """Inverse of :meth:`as_dict` (round-trip tested)."""
        return cls(target_name=data["target"],
                   target_bps=float(data["target_bps"]),
                   config_name=data["config"],
                   cores=int(data["cores"]),
                   per_core_bps=float(data["per_core_bps"]),
                   farm_gates=float(data["farm_gates"]))


def capacity_table(configs: Sequence[Tuple[str, PlatformCosts, float]],
                   targets: Dict[str, float] = None,
                   clock_hz: float = DEFAULT_CLOCK_HZ,
                   cpu_fraction: float = 1.0) -> List[CapacityPlan]:
    """Sizing table: for each aggregate target, each configuration's
    core count and total gate cost.

    ``configs`` holds ``(name, costs, gates_per_core)`` triples --
    e.g. base vs TIE-extended cores with their area overheads.
    """
    if targets is None:
        targets = farm_rate_targets()
    plans = []
    for target_name, target_bps in targets.items():
        for config_name, costs, gates in configs:
            per_core = max_secure_rate(costs, clock_hz, cpu_fraction)
            cores = cores_for_rate(costs, target_bps, clock_hz,
                                   cpu_fraction)
            plans.append(CapacityPlan(
                target_name=target_name, target_bps=target_bps,
                config_name=config_name, cores=cores,
                per_core_bps=per_core, farm_gates=cores * gates))
    return plans


def plan_farm(n_users: int, per_user_bps: float,
              configs: Sequence[Tuple[str, PlatformCosts, float]],
              activity_factor: float = DEFAULT_ACTIVITY_FACTOR,
              clock_hz: float = DEFAULT_CLOCK_HZ,
              cpu_fraction: float = 1.0) -> CapacityPlan:
    """The planner's headline answer: the cheapest (fewest total
    gates) configuration serving ``n_users`` at ``per_user_bps``."""
    if n_users < 1:
        raise ValueError("need at least one user")
    if not 0 < activity_factor <= 1:
        raise ValueError("activity_factor must be in (0, 1]")
    demand = n_users * activity_factor * per_user_bps
    target = {f"{n_users:,} users x {per_user_bps / 1e3:.0f} kbps":
              demand}
    plans = capacity_table(configs, target, clock_hz, cpu_fraction)
    return min(plans, key=lambda p: (p.farm_gates, p.cores))


def specs_as_configs(specs: Sequence[CoreSpec]
                     ) -> List[Tuple[str, PlatformCosts, float]]:
    """Unique (name, costs, gates) triples from a farm's core specs."""
    seen = {}
    for spec in specs:
        key = spec.costs.name
        if key not in seen:
            seen[key] = (key, spec.costs, spec.gates)
    return list(seen.values())
