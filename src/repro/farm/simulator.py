"""Deterministic discrete-event simulation of a security-core farm.

Virtual time is counted in *cycles* of the farm's common clock (the
paper's 188 MHz Xtensa, :data:`repro.ssl.throughput.DEFAULT_CLOCK_HZ`).
The engine is a classic event-heap design: request arrivals and core
completions are totally ordered by ``(time, sequence)``, so two runs
over the same request stream and scheduler produce byte-identical
results -- the property every benchmark and test in this package leans
on.

Each core carries its own run queue, busy-cycle accounting, and one
:class:`~repro.ssl.session_cache.SessionCache` per *resumable*
registered protocol (SSL sessions, TLS 1.3 tickets, ...): a resumed
request only gets the abbreviated-handshake price if it lands on a
core that cached the client's session under the protocol model's
cache key, which is what makes scheduler affinity a measurable
performance lever rather than a flag.
"""

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.costs import PlatformCosts
from repro.explore.codesign import HardwareConfig
from repro.obs import NULL_TRACER, MetricsRegistry, Tracer
from repro.protocols import get_protocol
from repro.ssl.session_cache import SessionCache
from repro.ssl.throughput import DEFAULT_CLOCK_HZ
from repro.farm.events import make_event_queue
from repro.farm.faults import FaultPlan
from repro.farm.workload import SessionRequest, cost_of

#: Representative gate-equivalent area of one base XT32 core (an
#: Xtensa-T1040-class embedded core is on the order of 1e5 NAND2
#: equivalents).  Only *relative* farm areas matter, exactly as with
#: the A-D curves.
BASE_CORE_GATES = 100_000.0

# Event kinds on the heap: faults sort before arrivals, arrivals
# before completions at equal times (a recovered core sees the work
# that lands on its recovery cycle; a freed core sees new work
# immediately).  _FAULT events only exist when a plan is injected, so
# the fault-free event order -- and with it every recorded baseline --
# is untouched.
_FAULT, _ARRIVAL, _COMPLETE = -1, 0, 1


@dataclass(frozen=True)
class CoreSpec:
    """Static description of one core in the farm."""

    name: str
    costs: PlatformCosts
    extended: bool
    gates: float


def extension_gates(add_width: int = 8, mac_width: int = 8) -> float:
    """Gate overhead of the TIE datapath (from the co-design area model)."""
    return HardwareConfig(add_width, mac_width).area


def build_farm(n_cores: int, base_costs: PlatformCosts,
               optimized_costs: PlatformCosts,
               extended_fraction: float = 0.5) -> List[CoreSpec]:
    """A farm of ``n_cores``: the first ``ceil(n*fraction)`` cores are
    TIE-extended ("optimized"), the rest are base cores.

    ``extended_fraction=1.0`` gives a homogeneous optimized farm,
    ``0.0`` a homogeneous base farm, anything between a heterogeneous
    one (the configuration the preferential scheduler targets).
    """
    if n_cores < 1:
        raise ValueError("need at least one core")
    if not 0 <= extended_fraction <= 1:
        raise ValueError("extended_fraction must be in [0, 1]")
    n_ext = round(n_cores * extended_fraction)
    if extended_fraction > 0:
        n_ext = max(1, n_ext)
    ext_gates = BASE_CORE_GATES + extension_gates()
    specs = []
    for i in range(n_cores):
        if i < n_ext:
            specs.append(CoreSpec(name=f"ext{i}", costs=optimized_costs,
                                  extended=True, gates=ext_gates))
        else:
            specs.append(CoreSpec(name=f"base{i}", costs=base_costs,
                                  extended=False, gates=BASE_CORE_GATES))
    return specs


@dataclass
class Completion:
    """One served request, with its full timing record (cycles)."""

    request: SessionRequest
    core_index: int
    start_cycle: float
    finish_cycle: float
    service_cycles: float
    cache_hit: bool

    @property
    def latency_cycles(self) -> float:
        return self.finish_cycle - self.request.arrival_cycle

    @property
    def queue_cycles(self) -> float:
        return self.start_cycle - self.request.arrival_cycle


class Core:
    """Runtime state of one farm core."""

    def __init__(self, index: int, spec: CoreSpec,
                 cache_capacity: int = 128):
        self.index = index
        self.spec = spec
        self.cache_capacity = cache_capacity
        #: One session cache per resumable protocol, created on first
        #: touch, so protocols never compete for cache slots and their
        #: hit/miss counters stay separable.
        self.caches: Dict[str, SessionCache] = {}
        self.queue: Deque[Tuple[SessionRequest, float]] = deque()
        self.current: Optional[SessionRequest] = None
        self.busy_until = 0.0
        self.busy_cycles = 0.0
        self.served = 0
        # -- fault-injection state (inert without a FaultPlan) --
        self.up = True
        self.degraded = False
        #: The cost table requests are priced with *right now*: the
        #: spec's table normally, the plan's degraded table while a
        #: ``degrade`` fault is in force.
        self.active_costs: PlatformCosts = spec.costs
        self.down_since: Optional[float] = None
        self.down_cycles = 0.0
        self.sessions_flushed = 0
        #: Fault kinds applied to this core, in injection order.
        self.fault_kinds: List[str] = []

    def cache_for(self, protocol: str) -> SessionCache:
        """The per-protocol session cache (created on first touch)."""
        cache = self.caches.get(protocol)
        if cache is None:
            cache = self.caches[protocol] = SessionCache(
                self.cache_capacity)
        return cache

    @property
    def cache(self) -> SessionCache:
        """The SSL session cache (the historical single-cache surface)."""
        return self.cache_for("ssl")

    def backlog_cycles(self, now: float) -> float:
        """Estimated outstanding work: remainder of the in-flight
        request plus the (full-handshake-priced) queued estimates."""
        remaining = max(0.0, self.busy_until - now)
        return remaining + sum(est for _, est in self.queue)

    def knows_session(self, session_id: bytes,
                      protocol: str = "ssl") -> bool:
        """Non-mutating cache membership probe (no hit/miss counting);
        the real, counted lookup happens when service starts."""
        cache = self.caches.get(protocol)
        return cache is not None and session_id in cache


@dataclass
class FarmResult:
    """Everything a simulation run produced."""

    completions: List[Completion]
    cores: List[Core]
    makespan_cycles: float
    clock_hz: float
    scheduler_name: str
    offered: int = 0
    events_processed: int = 0
    #: Requests displaced by a core failure and re-entered into the
    #: farm (each pays the plan's re-dispatch penalty).
    redispatches: int = 0
    #: Fault events that actually applied to a core this run.
    fault_events: int = 0


class FarmSimulator:
    """Event-driven farm simulator (arrivals in, completions out).

    Observability is opt-in: pass a :class:`repro.obs.Tracer` to get a
    span *tree* on the farm's cycle clock -- one ``farm.run`` root per
    simulation covering ``[0, makespan]``, a ``farm.request`` child
    per completion (enqueue/start/finish stamped on the cycle clock),
    and ``farm.wait`` / ``farm.service`` grandchildren splitting each
    request's latency into queueing and service time, which is what
    the :class:`repro.obs.CycleProfile` profiler attributes cycles
    over -- plus ``farm.core.queue_depth`` events
    whenever a run queue changes length, and a
    :class:`repro.obs.MetricsRegistry` for cache hit/miss counters,
    latency histograms, and per-core utilization gauges.  With neither
    supplied the inner loop's only overhead is one precomputed
    identity check against :data:`repro.obs.NULL_TRACER` -- the
    disabled path allocates nothing per event.
    """

    def __init__(self, specs: Sequence[CoreSpec], scheduler,
                 clock_hz: float = DEFAULT_CLOCK_HZ,
                 cache_capacity: int = 128,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 queue: str = "heap",
                 faults: Optional[FaultPlan] = None,
                 sampler=None):
        if not specs:
            raise ValueError("farm needs at least one core")
        self.specs = list(specs)
        self.scheduler = scheduler
        self.clock_hz = clock_hz
        self.cache_capacity = cache_capacity
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.queue = queue
        self.faults = faults
        #: Optional live time-series recorder (e.g. a
        #: :class:`repro.farm.timeseries.FarmSeriesRecorder`): its
        #: ``observe(completion)`` runs at each completion event, in
        #: emission order.  The caller owns ``finish()`` -- the
        #: simulator never closes the series.
        self.sampler = sampler
        #: Operation counters of the last run's event queue (see
        #: :meth:`repro.farm.events.EventQueue.stats`).
        self.last_queue_stats: Dict[str, float] = {}

    def run(self, requests: Sequence[SessionRequest]) -> FarmResult:
        cores = [Core(i, spec, self.cache_capacity)
                 for i, spec in enumerate(self.specs)]
        tracer = self.tracer
        # Hoisted no-op checks: the disabled path costs one identity /
        # None comparison per run, not per event (regression-tested).
        trace = tracer is not NULL_TRACER
        sampler = self.sampler
        sched_name = getattr(self.scheduler, "name", "?")
        # The run's root span: opened now so request spans can parent
        # to it, closed at the makespan once the heap drains.
        root = (tracer.open_virtual("farm.run", 0.0,
                                    scheduler=sched_name)
                if trace else None)
        root_id = root.span_id if trace else None
        heap = make_event_queue(self.queue)
        plan = self.faults
        if plan is not None:
            for order, event in enumerate(plan.events):
                # Fault events ride the same heap as traffic, keyed
                # (cycle, _FAULT, plan order, core): same-cycle faults
                # fire in plan order, before any same-cycle arrival.
                heap.push((event.cycle, _FAULT, order, event.core))
        for request in requests:
            # (time, kind, seq, core): arrivals sort before completions
            # at equal times so a freed core sees new work immediately.
            heap.push((request.arrival_cycle, _ARRIVAL, request.seq, -1))
        by_seq = {r.seq: r for r in requests}
        completions: List[Completion] = []
        starts = {}
        #: (core, seq, finish_cycle) tombstones of completion events
        #: voided by a core failure -- the heap has no remove, so we
        #: skip them.  The scheduled finish time is part of the key:
        #: a displaced request re-dispatched to the same core may
        #: legitimately finish *before* the voided event's time, and
        #: only the old event must be swallowed.
        cancelled = set()
        #: Requests that arrived while *no* core was alive; they
        #: re-enter the farm on the next recovery.
        stalled: List[SessionRequest] = []
        alive = len(cores)
        redispatches = 0
        fault_count = 0
        events = 0
        makespan = 0.0
        while heap:
            now, kind, seq, core_index = heap.pop()
            events += 1
            if kind == _FAULT:
                event = plan.events[seq]
                if event.core < len(cores):
                    applied, displaced, woken = self._apply_fault(
                        cores[event.core], event, plan, now, heap,
                        starts, cancelled, stalled)
                    fault_count += applied
                    redispatches += displaced
                    alive += woken
                    if event.kind == "core_down" and applied:
                        alive -= 1
                continue
            makespan = max(makespan, now)
            if kind == _ARRIVAL:
                request = by_seq[seq]
                if alive == 0:
                    # Nobody to dispatch to: hold the request until a
                    # core recovers (its arrival stamp is unchanged,
                    # so the outage shows up as latency).
                    stalled.append(request)
                    continue
                target = self.scheduler.select(request, cores, now)
                core = cores[target]
                estimate = cost_of(request, core.active_costs).cycles
                core.queue.append((request, estimate))
                if trace:
                    tracer.event("farm.core.queue_depth", time=now,
                                 core=core.index, depth=len(core.queue))
                if core.current is None:
                    self._start_next(core, now, heap, starts, tracer,
                                     trace)
            else:
                if (core_index, seq, now) in cancelled:
                    cancelled.discard((core_index, seq, now))
                    continue
                core = cores[core_index]
                request = core.current
                start, service, hit = starts.pop((core_index, seq))
                completion = Completion(
                    request=request, core_index=core_index,
                    start_cycle=start, finish_cycle=now,
                    service_cycles=service, cache_hit=hit)
                completions.append(completion)
                if sampler is not None:
                    sampler.observe(completion)
                core.busy_cycles += service
                core.served += 1
                model = get_protocol(request.protocol)
                if model.resumable and not (request.resumed and hit):
                    core.cache_for(request.protocol).store_entry(
                        model.cache_key(request.client_id),
                        model.session_record(request.client_id))
                core.current = None
                if trace:
                    span = tracer.record(
                        "farm.request", start=request.arrival_cycle,
                        end=now, parent_id=root_id,
                        scheduler=sched_name, seq=request.seq,
                        protocol=request.protocol,
                        client_id=request.client_id, core=core_index,
                        resumed=request.resumed, cache_hit=hit,
                        enqueue_cycle=request.arrival_cycle,
                        start_cycle=start, finish_cycle=now,
                        service_cycles=service,
                        queue_cycles=start - request.arrival_cycle,
                        size_bytes=request.size_bytes)
                    # Wait/service children tile the request span
                    # exactly, so the profiler attributes every
                    # latency cycle to queueing or service.
                    tracer.record("farm.wait",
                                  start=request.arrival_cycle,
                                  end=start, parent_id=span.span_id,
                                  core=core_index,
                                  protocol=request.protocol)
                    tracer.record("farm.service", start=start, end=now,
                                  parent_id=span.span_id,
                                  core=core_index,
                                  protocol=request.protocol,
                                  cache_hit=hit)
                if core.queue:
                    self._start_next(core, now, heap, starts, tracer,
                                     trace)
        if trace:
            tracer.close_virtual(root, makespan)
        for core in cores:
            if not core.up and core.down_since is not None:
                core.down_cycles += max(0.0, makespan - core.down_since)
                core.down_since = makespan
        self.last_queue_stats = heap.stats()
        result = FarmResult(completions=completions, cores=cores,
                            makespan_cycles=makespan,
                            clock_hz=self.clock_hz,
                            scheduler_name=getattr(self.scheduler, "name",
                                                   "?"),
                            offered=len(requests), events_processed=events,
                            redispatches=redispatches,
                            fault_events=fault_count)
        if self.metrics is not None:
            self._publish_metrics(result)
        return result

    def _publish_metrics(self, result: FarmResult) -> None:
        """End-of-run reduction into the supplied registry."""
        publish_metrics(result, self.metrics)

    @staticmethod
    def _apply_fault(core: Core, event, plan: FaultPlan, now: float,
                     heap, starts, cancelled, stalled):
        """Apply one fault event to ``core`` at ``now``.

        Returns ``(applied, displaced, woken)``: whether the event
        took effect (no-ops like downing a dead core don't count),
        how many requests it displaced back into the farm, and how
        many cores it brought back up.
        """
        kind = event.kind
        if kind == "core_down":
            if not core.up:
                return 0, 0, 0
            core.up = False
            core.down_since = now
            core.fault_kinds.append(kind)
            core.sessions_flushed += sum(
                cache.flush() for cache in core.caches.values())
            displaced: List[SessionRequest] = []
            if core.current is not None:
                request = core.current
                start, _, _ = starts.pop((core.index, request.seq))
                # The work done before the crash is real (and wasted):
                # it counts as busy cycles, and the already-scheduled
                # completion is voided by a tombstone.
                core.busy_cycles += now - start
                cancelled.add((core.index, request.seq,
                               core.busy_until))
                core.current = None
                displaced.append(request)
            displaced.extend(request for request, _ in core.queue)
            core.queue.clear()
            core.busy_until = now
            retry = now + plan.redispatch_penalty_cycles
            for request in displaced:
                heap.push((retry, _ARRIVAL, request.seq, -1))
            return 1, len(displaced), 0
        if kind == "core_up":
            recovered = 0
            applied = 0
            if not core.up:
                core.up = True
                if core.down_since is not None:
                    core.down_cycles += now - core.down_since
                    core.down_since = None
                recovered = 1
                applied = 1
            if core.degraded:
                core.degraded = False
                core.active_costs = core.spec.costs
                applied = 1
            if applied:
                core.fault_kinds.append(kind)
                # Requests stranded by a farm-wide outage re-arrive
                # now that a core is back.
                for request in stalled:
                    heap.push((now, _ARRIVAL, request.seq, -1))
                del stalled[:]
            return applied, 0, recovered
        if kind == "cache_flush":
            if not core.up:
                return 0, 0, 0
            core.fault_kinds.append(kind)
            core.sessions_flushed += sum(
                cache.flush() for cache in core.caches.values())
            return 1, 0, 0
        # degrade: the extension is fenced off; pricing falls back to
        # the plan's degraded table (when it has one) until core_up.
        if not core.up or core.degraded:
            return 0, 0, 0
        core.degraded = True
        core.fault_kinds.append(kind)
        if plan.degraded_costs is not None and core.spec.extended:
            core.active_costs = plan.degraded_costs
        return 1, 0, 0

    @staticmethod
    def _start_next(core: Core, now: float, heap, starts,
                    tracer=NULL_TRACER, trace: bool = False) -> None:
        request, _ = core.queue.popleft()
        hit = False
        if request.resumed:
            model = get_protocol(request.protocol)
            if model.resumable:
                hit = core.cache_for(request.protocol).lookup(
                    model.cache_key(request.client_id)) is not None
        service = cost_of(request, core.active_costs, cache_hit=hit).cycles
        core.current = request
        core.busy_until = now + service
        starts[(core.index, request.seq)] = (now, service, hit)
        if trace:
            tracer.event("farm.core.queue_depth", time=now,
                         core=core.index, depth=len(core.queue))
        heap.push((now + service, _COMPLETE, request.seq, core.index))


def publish_metrics(result: FarmResult, registry: MetricsRegistry) -> None:
    """End-of-run reduction of a :class:`FarmResult` into a registry.

    Module-level so merged (sharded) results can publish in the parent
    process, where per-shard registries from pool workers never land.
    """
    sched = result.scheduler_name
    clock = result.clock_hz
    registry.counter("farm.requests.offered",
                     scheduler=sched).inc(result.offered)
    registry.counter("farm.requests.completed",
                     scheduler=sched).inc(len(result.completions))
    registry.counter("farm.events.processed",
                     scheduler=sched).inc(result.events_processed)
    latency = registry.histogram("farm.request.latency_ms",
                                 scheduler=sched)
    for completion in result.completions:
        latency.observe(completion.latency_cycles / clock * 1e3)
    for core in result.cores:
        registry.counter("farm.cache.hits", scheduler=sched,
                         core=core.index).inc(
            sum(c.hits for c in core.caches.values()))
        registry.counter("farm.cache.misses", scheduler=sched,
                         core=core.index).inc(
            sum(c.misses for c in core.caches.values()))
        registry.gauge("farm.core.utilization", scheduler=sched,
                       core=core.index).set(
            core.busy_cycles / result.makespan_cycles
            if result.makespan_cycles else 0.0)
        registry.counter("farm.core.served", scheduler=sched,
                         core=core.index).inc(core.served)
    # Farm-wide per-protocol session-cache counters: one pair per
    # protocol that touched a cache anywhere in the farm.
    per_protocol: Dict[str, Tuple[int, int]] = {}
    for core in result.cores:
        for protocol, cache in core.caches.items():
            hits, misses = per_protocol.get(protocol, (0, 0))
            per_protocol[protocol] = (hits + cache.hits,
                                      misses + cache.misses)
    for protocol, (hits, misses) in sorted(per_protocol.items()):
        registry.counter("farm.session_cache.hits", scheduler=sched,
                         protocol=protocol).inc(hits)
        registry.counter("farm.session_cache.misses", scheduler=sched,
                         protocol=protocol).inc(misses)
    # Fault counters only exist when a plan actually struck: a
    # fault-free run's metrics payload stays byte-identical to the
    # pre-fault-injection engine.
    if result.fault_events or result.redispatches:
        registry.counter("farm.fault.events",
                         scheduler=sched).inc(result.fault_events)
        registry.counter("farm.fault.redispatches",
                         scheduler=sched).inc(result.redispatches)
        registry.counter("farm.fault.sessions_flushed",
                         scheduler=sched).inc(
            sum(core.sessions_flushed for core in result.cores))
        registry.gauge("farm.fault.downtime_cycles",
                       scheduler=sched).set(
            sum(core.down_cycles for core in result.cores))
