"""Deterministic fault injection for the security-core farm.

Every robustness claim the chaos scenarios make rests on the same
property the performance benchmarks lean on: byte-identical
reproducibility.  A :class:`FaultPlan` is therefore *data*, fixed
before the simulation starts -- a sorted schedule of
:class:`FaultEvent` records, either declared explicitly (tests, JSON
plan files) or drawn from ``DeterministicPrng(seed).fork("faults")``
(:func:`generate_fault_plan`), never from wall-clock randomness.  The
same plan replayed over the same workload produces the same merged
:class:`~repro.farm.simulator.FarmResult` under any ``--shards`` /
``--jobs`` setting, because plans shard by the same strided core
ownership the simulator uses (:meth:`FaultPlan.subplan_strided`).

Four fault kinds, matching the failure modes a wireless security
gateway operator actually plans for:

- ``core_down``   -- the core dies at ``cycle``: its session caches
  are lost (flushed, counters kept), its in-flight and queued requests
  re-enter the farm after a re-dispatch penalty, and no scheduler may
  select it until it recovers;
- ``core_up``     -- the core rejoins, cold caches and all;
- ``cache_flush`` -- the core survives but its session caches are
  wiped (a cache-poisoning mitigation, a failover without state
  transfer);
- ``degrade``     -- a TIE-extended core falls back to base-ISA
  pricing (the accelerator is fenced off after an error) until its
  next ``core_up``.
"""

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.costs import PlatformCosts
from repro.mp import DeterministicPrng

__all__ = ["DEFAULT_REDISPATCH_PENALTY_CYCLES", "FAULT_KINDS",
           "FaultEvent", "FaultPlan", "FaultReport",
           "generate_fault_plan", "summarize_faults"]

#: The recognized fault kinds (see module docstring).
FAULT_KINDS = ("core_down", "core_up", "cache_flush", "degrade")

#: Cycles a request displaced by a core failure spends being detected,
#: re-queued, and re-dispatched before the scheduler sees it again
#: (order of a protocol-stack traversal, far below a handshake).
DEFAULT_REDISPATCH_PENALTY_CYCLES = 2000.0


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: ``kind`` strikes ``core`` at ``cycle``."""

    cycle: float
    kind: str
    core: int

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"known: {list(FAULT_KINDS)}")
        if self.cycle < 0:
            raise ValueError("fault cycle must be non-negative")
        if self.core < 0:
            raise ValueError("fault core must be non-negative")

    def as_dict(self) -> Dict:
        return {"cycle": self.cycle, "kind": self.kind,
                "core": self.core}

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultEvent":
        return cls(cycle=float(payload["cycle"]),
                   kind=str(payload["kind"]),
                   core=int(payload["core"]))


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic fault schedule plus its injection parameters.

    ``events`` are kept in ``(cycle, declaration order)`` order;
    simulators inject them with that order as the tie-breaker, so two
    faults at the same cycle fire in plan order everywhere.
    ``degraded_costs`` prices a degraded extended core (typically the
    farm's base-core costs); without it, ``degrade`` events are
    recorded but do not change pricing.
    """

    events: Tuple[FaultEvent, ...] = ()
    redispatch_penalty_cycles: float = DEFAULT_REDISPATCH_PENALTY_CYCLES
    degraded_costs: Optional[PlatformCosts] = None

    def __post_init__(self):
        events = tuple(self.events)
        ordered = sorted(range(len(events)),
                         key=lambda i: (events[i].cycle, i))
        object.__setattr__(self, "events",
                           tuple(events[i] for i in ordered))
        if self.redispatch_penalty_cycles < 0:
            raise ValueError(
                "redispatch_penalty_cycles must be non-negative")

    def __bool__(self) -> bool:
        return bool(self.events)

    def subplan_strided(self, shards: int, shard: int) -> "FaultPlan":
        """The sub-plan for shard ``shard`` of ``shards``.

        Shard ``i`` owns the cores at stride ``shards``
        (``specs[i::shards]``, exactly the shard layer's core
        ownership), so global core ``g`` belongs to shard ``g %
        shards`` where its local index is ``g // shards``.  Sub-plans
        partition the parent's events; merging the per-shard outcomes
        reproduces the unsharded run.
        """
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if not 0 <= shard < shards:
            raise ValueError(f"shard must be in [0, {shards})")
        if shards == 1:
            return self
        return replace(self, events=tuple(
            replace(event, core=event.core // shards)
            for event in self.events if event.core % shards == shard))

    def window(self, start_cycle: float, end_cycle: float) -> "FaultPlan":
        """The sub-plan covering ``[start_cycle, end_cycle)``, rebased
        so the window's first cycle is 0 (the autoscale loop runs each
        epoch on a fresh virtual clock)."""
        if end_cycle < start_cycle:
            raise ValueError("end_cycle must be >= start_cycle")
        return replace(self, events=tuple(
            replace(event, cycle=event.cycle - start_cycle)
            for event in self.events
            if start_cycle <= event.cycle < end_cycle))

    def as_dict(self) -> Dict:
        return {
            "events": [event.as_dict() for event in self.events],
            "redispatch_penalty_cycles": self.redispatch_penalty_cycles,
            "degraded_costs": (self.degraded_costs.name
                               if self.degraded_costs else None),
        }

    @classmethod
    def from_dict(cls, payload: Dict,
                  degraded_costs: Optional[PlatformCosts] = None
                  ) -> "FaultPlan":
        """Rebuild a plan from :meth:`as_dict` output (a JSON plan
        file).  ``degraded_costs`` must be supplied by the caller --
        cost tables are measured objects, not plan data."""
        return cls(
            events=tuple(FaultEvent.from_dict(entry)
                         for entry in payload.get("events", ())),
            redispatch_penalty_cycles=float(payload.get(
                "redispatch_penalty_cycles",
                DEFAULT_REDISPATCH_PENALTY_CYCLES)),
            degraded_costs=degraded_costs)


def generate_fault_plan(seed: int, n_cores: int, horizon_cycles: float,
                        episodes: int = 3,
                        mean_outage_fraction: float = 0.15,
                        redispatch_penalty_cycles: float =
                        DEFAULT_REDISPATCH_PENALTY_CYCLES,
                        degraded_costs: Optional[PlatformCosts] = None
                        ) -> FaultPlan:
    """Draw a seeded chaos schedule from the ``"faults"`` PRNG fork.

    Each of ``episodes`` episodes picks a victim core and one of three
    shapes: an outage (``core_down`` then ``core_up`` after roughly
    ``mean_outage_fraction`` of the horizon), a degradation
    (``degrade`` then ``core_up``), or a lone ``cache_flush``.  The
    schedule depends only on ``(seed, n_cores, horizon_cycles,
    episodes, mean_outage_fraction)`` -- the fork label keeps it
    independent of workload generation and sharding draws on the same
    seed.
    """
    if n_cores < 1:
        raise ValueError("need at least one core")
    if horizon_cycles <= 0:
        raise ValueError("horizon_cycles must be positive")
    if episodes < 0:
        raise ValueError("episodes must be non-negative")
    if not 0 < mean_outage_fraction <= 1:
        raise ValueError("mean_outage_fraction must be in (0, 1]")
    prng = DeterministicPrng(seed).fork("faults")

    def uniform() -> float:
        return (prng.next_u64() + 1) / 2.0 ** 64

    events: List[FaultEvent] = []
    for _ in range(episodes):
        core = prng.next_int(n_cores)
        # Strike somewhere in the first 80% of the horizon so the
        # fault has traffic left to disturb.
        strike = uniform() * 0.8 * horizon_cycles
        shape = prng.next_int(3)
        if shape == 0:
            outage = ((0.5 + uniform())
                      * mean_outage_fraction * horizon_cycles)
            events.append(FaultEvent(cycle=strike, kind="core_down",
                                     core=core))
            events.append(FaultEvent(cycle=strike + outage,
                                     kind="core_up", core=core))
        elif shape == 1:
            outage = ((0.5 + uniform())
                      * mean_outage_fraction * horizon_cycles)
            events.append(FaultEvent(cycle=strike, kind="degrade",
                                     core=core))
            events.append(FaultEvent(cycle=strike + outage,
                                     kind="core_up", core=core))
        else:
            events.append(FaultEvent(cycle=strike, kind="cache_flush",
                                     core=core))
    return FaultPlan(events=tuple(events),
                     redispatch_penalty_cycles=redispatch_penalty_cycles,
                     degraded_costs=degraded_costs)


@dataclass
class FaultReport:
    """What a plan actually did to a run."""

    events_injected: int
    redispatches: int
    sessions_flushed: int
    downtime_cycles: float
    by_kind: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return {"events_injected": self.events_injected,
                "redispatches": self.redispatches,
                "sessions_flushed": self.sessions_flushed,
                "downtime_cycles": self.downtime_cycles,
                "by_kind": dict(sorted(self.by_kind.items()))}


def summarize_faults(result, plan: FaultPlan) -> FaultReport:
    """Reduce a fault-aware :class:`~repro.farm.simulator.FarmResult`
    to its chaos summary (injected counts come from the cores'
    recorded fault history, so merged sharded results sum cleanly)."""
    by_kind: Dict[str, int] = {}
    flushed = 0
    downtime = 0.0
    for core in result.cores:
        for kind in getattr(core, "fault_kinds", ()):
            by_kind[kind] = by_kind.get(kind, 0) + 1
        flushed += getattr(core, "sessions_flushed", 0)
        downtime += getattr(core, "down_cycles", 0.0)
    return FaultReport(
        events_injected=sum(by_kind.values()),
        redispatches=result.redispatches,
        sessions_flushed=flushed,
        downtime_cycles=downtime,
        by_kind=by_kind)
