"""Farm-level performance metrics.

Reduces a :class:`~repro.farm.simulator.FarmResult` to the unified
throughput / latency / area report the analysis framework of Damaj &
Kasbah (arXiv:1904.01000) argues for: sessions/s and secure Mbps,
latency percentiles, per-core utilization, and *area-normalized*
throughput -- sessions/s per million gate equivalents, the farm-level
analogue of the paper's A-D trade-off (more cores buy throughput at a
gate cost, exactly as wider datapaths buy cycles).
"""

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.farm.simulator import FarmResult


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    if not 0 < pct <= 100:
        raise ValueError("pct must be in (0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass
class FarmMetrics:
    """One scheduler/farm configuration's summary row."""

    scheduler: str
    n_cores: int
    completed: int
    elapsed_s: float
    sessions_per_s: float
    secure_mbps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    core_utilization: List[float]
    mean_utilization: float
    cache_hit_rate: float
    total_gates: float
    sessions_per_s_per_mgate: float
    #: Per-protocol session-cache traffic, keyed by protocol name:
    #: ``{"ssl": {"hits": ..., "misses": ..., "hit_rate": ...}}``.
    #: Only protocols that touched a cache appear.
    session_cache: Dict[str, Dict[str, float]] = field(
        default_factory=dict)

    def as_dict(self) -> Dict:
        return {
            "scheduler": self.scheduler,
            "n_cores": self.n_cores,
            "completed": self.completed,
            "elapsed_s": self.elapsed_s,
            "sessions_per_s": self.sessions_per_s,
            "secure_mbps": self.secure_mbps,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "core_utilization": self.core_utilization,
            "mean_utilization": self.mean_utilization,
            "cache_hit_rate": self.cache_hit_rate,
            "total_gates": self.total_gates,
            "sessions_per_s_per_mgate": self.sessions_per_s_per_mgate,
            "session_cache": self.session_cache,
        }


def window_metrics(result: FarmResult,
                   window_seconds: float = 1.0) -> List[Dict[str, float]]:
    """Per-window SLO samples over a run's virtual timeline.

    Splits ``[0, makespan]`` into ``window_seconds`` windows on the
    farm's cycle clock and reduces each to the sample dict a
    :class:`repro.obs.slo.SloMonitor` evaluates: ``p99_ms`` and
    ``cache_hit_rate`` over the completions that *finish* in the
    window (omitted when none did -- unmeasured, not zero),
    ``secure_mbps`` of the payload those completions delivered against
    the window wall, and ``utilization`` as the served cycles
    overlapping the window over the farm's window capacity.  Every
    sample also carries ``completed`` (the window's completion count);
    :class:`~repro.obs.slo.SloTarget` ignores metrics it has no
    objective for, and the count lets conservation checks assert that
    windowing neither drops nor double-counts completions.
    """
    if window_seconds <= 0:
        raise ValueError("window_seconds must be positive")
    clock = result.clock_hz
    window_cycles = window_seconds * clock
    if result.makespan_cycles <= 0:
        return []
    n_windows = max(1, math.ceil(result.makespan_cycles / window_cycles))
    buckets: List[List] = [[] for _ in range(n_windows)]
    for completion in result.completions:
        index = min(n_windows - 1,
                    int(completion.finish_cycle // window_cycles))
        buckets[index].append(completion)
    n_cores = len(result.cores)
    samples: List[Dict[str, float]] = []
    for index, bucket in enumerate(buckets):
        start = index * window_cycles
        end = start + window_cycles
        sample: Dict[str, float] = {"completed": float(len(bucket))}
        if bucket:
            sample["p99_ms"] = percentile(
                [c.latency_cycles / clock * 1e3 for c in bucket], 99)
            sample["secure_mbps"] = (
                sum(c.request.size_bytes * 8 for c in bucket)
                / window_seconds / 1e6)
            lookups = sum(1 for c in bucket if c.request.resumed)
            if lookups:
                sample["cache_hit_rate"] = (
                    sum(1 for c in bucket if c.cache_hit) / lookups)
        else:
            sample["secure_mbps"] = 0.0
        busy = sum(
            max(0.0, min(c.finish_cycle, end) - max(c.start_cycle, start))
            for c in result.completions
            if c.start_cycle < end and c.finish_cycle > start)
        sample["utilization"] = (busy / (n_cores * window_cycles)
                                 if n_cores else 0.0)
        samples.append(sample)
    return samples


def summarize(result: FarmResult) -> FarmMetrics:
    """Reduce a simulation run to its metrics row."""
    clock = result.clock_hz
    elapsed_s = result.makespan_cycles / clock if result.makespan_cycles \
        else 0.0
    latencies_ms = [c.latency_cycles / clock * 1e3
                    for c in result.completions]
    payload_bits = sum(c.request.size_bytes * 8
                       for c in result.completions)
    utilization = [
        (core.busy_cycles / result.makespan_cycles
         if result.makespan_cycles else 0.0)
        for core in result.cores]
    per_protocol: Dict[str, List[int]] = {}
    for core in result.cores:
        for protocol, cache in core.caches.items():
            totals = per_protocol.setdefault(protocol, [0, 0])
            totals[0] += cache.hits
            totals[1] += cache.misses
    session_cache = {
        protocol: {"hits": float(h), "misses": float(m),
                   "hit_rate": h / (h + m) if h + m else 0.0}
        for protocol, (h, m) in sorted(per_protocol.items())}
    hits = sum(h for h, _ in per_protocol.values())
    misses = sum(m for _, m in per_protocol.values())
    gates = sum(core.spec.gates for core in result.cores)
    sessions_per_s = (len(result.completions) / elapsed_s
                      if elapsed_s else 0.0)
    return FarmMetrics(
        scheduler=result.scheduler_name,
        n_cores=len(result.cores),
        completed=len(result.completions),
        elapsed_s=elapsed_s,
        sessions_per_s=sessions_per_s,
        secure_mbps=(payload_bits / elapsed_s / 1e6 if elapsed_s else 0.0),
        p50_ms=percentile(latencies_ms, 50),
        p95_ms=percentile(latencies_ms, 95),
        p99_ms=percentile(latencies_ms, 99),
        core_utilization=utilization,
        mean_utilization=(sum(utilization) / len(utilization)
                          if utilization else 0.0),
        cache_hit_rate=(hits / (hits + misses) if hits + misses else 0.0),
        total_gates=gates,
        sessions_per_s_per_mgate=(sessions_per_s / (gates / 1e6)
                                  if gates else 0.0),
        session_cache=session_cache,
    )
