"""Sharded population-scale farm simulation.

One global event heap tops out long before the ROADMAP's "millions of
users": every request in the population funnels through a single
simulation loop.  This module partitions the *population* instead --
shard ``i`` owns the clients in residue class ``client_id % shards ==
i``, draws its own traffic from the independent PRNG stream
``DeterministicPrng(seed).fork(f"shard[{i}]")``, and runs a private
:class:`~repro.farm.simulator.FarmSimulator` over its own slice of the
farm's cores.  Shards never share state (client affinity, and with it
SSL session-cache locality, stays within a shard by construction), so
they run perfectly parallel on the :mod:`repro.parallel` executors.

Determinism contract:

- per-shard workloads depend only on ``(profile, n_requests, shards,
  seed)`` -- fork labels make the streams order- and
  schedule-independent;
- :func:`merge_results` reduces per-shard results with a *stable* sort
  on ``(finish_cycle, request.seq)`` -- the order a single simulator
  naturally completes in -- so merged metrics are identical run to run
  and across ``--jobs`` settings;
- ``shards=1`` takes the plain :func:`~repro.farm.workload.
  generate_requests` stream and an in-process simulator, so its
  :class:`~repro.farm.simulator.FarmResult` is **bit-identical** to
  the unsharded engine (gated at diff=0 by ``BENCH_farm_sharded``).

Observability: a parallel run cannot stream spans out of pool workers,
so the parent emits one ``farm.sharded`` root with a ``farm.shard``
child per shard (offered/completed/makespan attributes).  A serial run
(jobs=1) additionally passes the tracer *into* each shard simulator,
preserving the full per-request span tree.  Merged metrics publish
once, in the parent, through
:func:`repro.farm.simulator.publish_metrics`.
"""

import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.mp import DeterministicPrng
from repro.obs import NULL_TRACER, MetricsRegistry, Tracer
from repro.parallel import Executor, executor_scope
from repro.protocols import UnknownProtocolError, protocol_names
from repro.ssl.throughput import DEFAULT_CLOCK_HZ
from repro.farm.faults import FaultPlan
from repro.farm.scheduler import make_scheduler
from repro.farm.simulator import (CoreSpec, FarmResult, FarmSimulator,
                                  publish_metrics)
from repro.farm.workload import (SessionRequest, TrafficProfile,
                                 _generate_stream, generate_requests)

__all__ = ["ShardedRun", "merge_results", "partition_requests",
           "run_sharded", "shard_workload"]


def shard_workload(profile: TrafficProfile, n_requests: int,
                   shards: int, seed: int = 1,
                   clock_hz: float = DEFAULT_CLOCK_HZ
                   ) -> List[List[SessionRequest]]:
    """Per-shard request streams for a population split ``shards`` ways.

    Shard ``i`` draws from ``DeterministicPrng(seed).fork(f"shard[{i}]")``
    and owns the clients congruent to ``i`` modulo ``shards``; global
    sequence numbers interleave (``seq % shards == i``) so the merged
    stream keeps unique, deterministic tie-breakers.  ``shards=1``
    returns exactly ``[generate_requests(...)]`` -- same PRNG stream,
    same requests, byte for byte.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if shards > profile.clients:
        raise ValueError(
            f"cannot split {profile.clients} clients into {shards} shards")
    if n_requests < 0:
        raise ValueError("n_requests must be non-negative")
    if shards == 1:
        return [generate_requests(profile, n_requests, seed, clock_hz)]
    root = DeterministicPrng(seed)
    workloads = []
    base, extra = divmod(n_requests, shards)
    for i in range(shards):
        count = base + (1 if i < extra else 0)
        # Clients in residue class i: i, i+shards, ... below clients.
        client_space = (profile.clients - i + shards - 1) // shards
        workloads.append(_generate_stream(
            profile, count, root.fork(f"shard[{i}]"),
            profile.arrival_rate / shards, clock_hz,
            seq_base=i, seq_stride=shards,
            client_base=i, client_stride=shards,
            client_space=client_space))
    return workloads


def partition_requests(requests: Sequence[SessionRequest],
                       shards: int) -> List[List[SessionRequest]]:
    """Split an *existing* stream by client residue class.

    The replay path: a trace partitions exactly as generation would
    have sharded it (shard ``i`` serves the clients with ``client_id %
    shards == i``), preserving each shard's arrival order, so a
    replayed sharded run equals a generated one over the same stream.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    unknown = ({request.protocol for request in requests}
               - set(protocol_names()))
    if unknown:
        raise UnknownProtocolError(sorted(unknown), protocol_names())
    if shards == 1:
        return [list(requests)]
    buckets: List[List[SessionRequest]] = [[] for _ in range(shards)]
    for request in requests:
        buckets[request.client_id % shards].append(request)
    return buckets


def merge_results(shard_results: Sequence[FarmResult]) -> FarmResult:
    """Order-preserving reduction of per-shard results into one.

    Completions merge under a stable sort by ``(finish_cycle,
    request.seq)`` -- exactly the order the event loop pops completion
    events -- so a one-shard merge is a no-op and a many-shard merge
    does not depend on the order shard results arrive.  Core (and
    completion) indices are re-offset by each shard's position so
    ``result.cores[c.core_index]`` stays valid in the merged result;
    the inputs are **consumed** by that in-place renumbering.
    """
    if not shard_results:
        raise ValueError("nothing to merge")
    completions = []
    cores = []
    offset = 0
    for result in shard_results:
        for core in result.cores:
            core.index += offset
        for completion in result.completions:
            completion.core_index += offset
        completions.extend(result.completions)
        cores.extend(result.cores)
        offset += len(result.cores)
    completions.sort(key=lambda c: (c.finish_cycle, c.request.seq))
    first = shard_results[0]
    return FarmResult(
        completions=completions, cores=cores,
        makespan_cycles=max(r.makespan_cycles for r in shard_results),
        clock_hz=first.clock_hz,
        scheduler_name=first.scheduler_name,
        offered=sum(r.offered for r in shard_results),
        events_processed=sum(r.events_processed for r in shard_results),
        redispatches=sum(r.redispatches for r in shard_results),
        fault_events=sum(r.fault_events for r in shard_results))


def _merge_queue_stats(stats: Sequence[Dict[str, float]]
                       ) -> Dict[str, float]:
    """Sum per-shard event-queue counters (``kind`` passes through)."""
    merged: Dict[str, float] = {}
    for entry in stats:
        for key, value in entry.items():
            if key == "kind":
                merged[key] = value
            else:
                merged[key] = merged.get(key, 0.0) + value
    return merged


def _simulate_shard(task):
    """Run one shard (module-level so process pools can pickle it)."""
    (specs, scheduler_name, requests, clock_hz, cache_capacity,
     queue, faults) = task
    simulator = FarmSimulator(specs, make_scheduler(scheduler_name),
                              clock_hz=clock_hz,
                              cache_capacity=cache_capacity, queue=queue,
                              faults=faults)
    start = time.perf_counter()
    result = simulator.run(requests)
    wall = time.perf_counter() - start
    return result, simulator.last_queue_stats, wall


@dataclass
class ShardedRun:
    """Everything a sharded simulation produced."""

    result: FarmResult                 # merged, order-preserving
    shards: int
    jobs: int
    executor: str
    queue: str
    queue_stats: Dict[str, float] = field(default_factory=dict)
    wall_seconds: float = 0.0          # parent wall clock
    shard_wall_seconds: float = 0.0    # summed per-shard wall clocks

    @property
    def parallel_speedup(self) -> float:
        """Summed shard work over parent wall time (same definition as
        the exploration engine's speedup)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.shard_wall_seconds / self.wall_seconds


def _run_sharded(specs: Sequence[CoreSpec], scheduler_name: str,
                 profile: TrafficProfile = None, n_requests: int = None,
                 shards: int = 1, seed: int = 1,
                 clock_hz: float = DEFAULT_CLOCK_HZ,
                 cache_capacity: int = 128, queue: str = "heap",
                 jobs: Optional[int] = None,
                 executor: Optional[Executor] = None,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 requests: Optional[Sequence[SessionRequest]] = None,
                 faults: Optional[FaultPlan] = None) -> ShardedRun:
    """Generate (or replay), shard, simulate, and merge in one call
    (the engine behind :func:`repro.farm.config.run_farm`).

    With ``requests`` given (the replay path) the stream is
    partitioned by :func:`partition_requests` instead of generated;
    ``profile``/``n_requests``/``seed`` are then unused.

    Each shard gets a *fresh* scheduler (``make_scheduler(name)``) over
    its own strided slice of the farm (``specs[i::shards]``, so the
    merged farm keeps the original core count and extended/base mix)
    and the matching strided sub-plan of ``faults``
    (:meth:`~repro.farm.faults.FaultPlan.subplan_strided` follows the
    same core ownership), and shard count -- not jobs count --
    is the only thing that shapes results: the same ``(profile,
    n_requests, shards, seed, queue, faults)`` tuple reproduces
    identical merged metrics under any executor.

    ``shards=1`` short-circuits to one in-process simulator run with
    the caller's tracer and metrics attached -- byte-identical
    behavior, spans, and metrics to driving
    :class:`~repro.farm.simulator.FarmSimulator` directly.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    trace = tracer is not NULL_TRACER
    if shards > len(specs):
        raise ValueError(
            f"cannot split {len(specs)} cores into {shards} shards")
    if requests is not None:
        workloads = partition_requests(requests, shards)
    elif profile is None or n_requests is None:
        raise ValueError("need either requests= or profile+n_requests")
    else:
        workloads = shard_workload(profile, n_requests, shards, seed,
                                   clock_hz)
    start = time.perf_counter()
    if shards == 1:
        simulator = FarmSimulator(specs, make_scheduler(scheduler_name),
                                  clock_hz=clock_hz,
                                  cache_capacity=cache_capacity,
                                  tracer=tracer, metrics=metrics,
                                  queue=queue, faults=faults)
        result = simulator.run(workloads[0])
        wall = time.perf_counter() - start
        return ShardedRun(result=result, shards=1, jobs=1,
                          executor="serial", queue=queue,
                          queue_stats=dict(simulator.last_queue_stats),
                          wall_seconds=wall, shard_wall_seconds=wall)
    # Shard i owns the cores at stride `shards` (specs[i::shards]), so
    # a heterogeneous farm's extended/base mix spreads evenly across
    # shards and the merged farm has exactly the original core count.
    # The fault plan shards under the same ownership map.
    tasks = [(list(specs[i::shards]), scheduler_name, workloads[i],
              clock_hz, cache_capacity, queue,
              faults.subplan_strided(shards, i) if faults else None)
             for i in range(shards)]
    root = (tracer.open_virtual("farm.sharded", 0.0,
                                scheduler=scheduler_name, shards=shards,
                                queue=queue)
            if trace else None)
    with executor_scope(jobs, executor) as pool:
        outcomes = pool.map(_simulate_shard, tasks, label="farm.shard")
        kind, pool_jobs = pool.kind, pool.jobs
    wall = time.perf_counter() - start
    shard_results = [result for result, _, _ in outcomes]
    if trace:
        for i, shard_result in enumerate(shard_results):
            tracer.record(
                "farm.shard", start=0.0,
                end=shard_result.makespan_cycles,
                parent_id=root.span_id, shard=i,
                offered=shard_result.offered,
                completed=len(shard_result.completions))
    merged = merge_results(shard_results)
    if trace:
        tracer.close_virtual(root, merged.makespan_cycles)
    if metrics is not None:
        publish_metrics(merged, metrics)
    return ShardedRun(
        result=merged, shards=shards, jobs=pool_jobs, executor=kind,
        queue=queue,
        queue_stats=_merge_queue_stats([stats for _, stats, _
                                        in outcomes]),
        wall_seconds=wall,
        shard_wall_seconds=sum(shard_wall for _, _, shard_wall
                               in outcomes))


def run_sharded(specs: Sequence[CoreSpec], scheduler_name: str,
                profile: TrafficProfile = None, n_requests: int = None,
                shards: int = 1, seed: int = 1,
                clock_hz: float = DEFAULT_CLOCK_HZ,
                cache_capacity: int = 128, queue: str = "heap",
                jobs: Optional[int] = None,
                executor: Optional[Executor] = None,
                tracer: Optional[Tracer] = None,
                metrics: Optional[MetricsRegistry] = None,
                requests: Optional[Sequence[SessionRequest]] = None
                ) -> ShardedRun:
    """Deprecated: build a :class:`repro.farm.config.FarmConfig` and
    call :func:`repro.farm.config.run_farm` instead.

    This shim delegates through the facade bit-identically (gated by
    a regression test), so existing callers keep their exact results
    while the knobs live in one config object.
    """
    warnings.warn(
        "run_sharded(...) is deprecated; build a FarmConfig and call "
        "repro.farm.run_farm(config) instead",
        DeprecationWarning, stacklevel=2)
    from repro.farm.config import FarmConfig, run_farm
    config = FarmConfig(
        specs=tuple(specs), scheduler=scheduler_name, profile=profile,
        n_requests=n_requests,
        requests=tuple(requests) if requests is not None else None,
        shards=shards, seed=seed, jobs=jobs, clock_hz=clock_hz,
        cache_capacity=cache_capacity, queue=queue)
    return run_farm(config, tracer=tracer, metrics=metrics,
                    executor=executor).sharded
