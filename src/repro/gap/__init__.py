"""The security processing gap model (paper Figure 1)."""

from repro.gap.trends import (GapModel, ProcessorNode, WirelessGeneration,
                              security_processing_mips,
                              embedded_processor_mips)

__all__ = ["GapModel", "ProcessorNode", "WirelessGeneration",
           "security_processing_mips", "embedded_processor_mips"]
