"""Figure 1: projected security-processing MIPS vs embedded CPU MIPS.

The paper's opening figure contrasts two trends across wireless
generations (2G -> 2.5G -> 3G) and silicon nodes (0.35u -> 0.10u):

- the MIPS *required* to run security protocols at each generation's
  data rate, and
- the MIPS an embedded handset processor *delivers* at each node.

The requirement curve grows super-linearly (data rate growth compounds
with stronger ciphers), the capability curve grows slower (power/cost
constrained), and the widening difference is the "security processing
gap" the platform exists to close.  This module derives both series
from first principles using the repository's own measured per-byte
cipher costs, rather than transcribing the figure.
"""

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class WirelessGeneration:
    """One wireless technology generation."""

    name: str
    year: int
    data_rate_bps: float
    #: Relative cryptographic strength factor: later generations run
    #: stronger suites (3DES/AES + bigger RSA keys) costing more
    #: cycles per byte and more frequent handshakes.
    crypto_strength: float


@dataclass(frozen=True)
class ProcessorNode:
    """An embedded-processor silicon node."""

    name: str
    year: int
    feature_um: float
    clock_mhz: float
    #: Architecture factor: issue width / pipeline improvements.
    ipc: float


#: The generations Figure 1 spans (rates in the paper's stated bands).
GENERATIONS: List[WirelessGeneration] = [
    WirelessGeneration("2G", 1997, 14_400, 1.0),
    WirelessGeneration("2.5G", 2000, 144_000, 1.6),
    WirelessGeneration("3G", 2002, 2_000_000, 2.5),
    WirelessGeneration("3G+/WLAN", 2004, 10_000_000, 3.2),
]

#: Embedded processor nodes from 0.35u to 0.10u.
NODES: List[ProcessorNode] = [
    ProcessorNode("0.35u", 1997, 0.35, 60, 0.8),
    ProcessorNode("0.25u", 1999, 0.25, 100, 0.9),
    ProcessorNode("0.18u", 2001, 0.18, 188, 1.0),
    ProcessorNode("0.13u", 2003, 0.13, 300, 1.1),
    ProcessorNode("0.10u", 2005, 0.10, 450, 1.2),
]

#: Instructions of security processing per byte of protected traffic at
#: 2G strength.  Derived from this repository's measured base-platform
#: costs: bulk cipher (~hundreds of cycles/byte) + MAC + amortized
#: handshake public-key work.
SECURITY_INSTRUCTIONS_PER_BYTE = 900.0


def security_processing_mips(generation: WirelessGeneration) -> float:
    """MIPS required to keep up with a generation's full data rate."""
    bytes_per_second = generation.data_rate_bps / 8.0
    instr_per_second = (bytes_per_second * SECURITY_INSTRUCTIONS_PER_BYTE
                        * generation.crypto_strength)
    return instr_per_second / 1e6


def embedded_processor_mips(node: ProcessorNode) -> float:
    """MIPS a power-constrained embedded core delivers at a node."""
    return node.clock_mhz * node.ipc


class GapModel:
    """The two Figure 1 series and the widening gap between them."""

    def __init__(self, generations: List[WirelessGeneration] = None,
                 nodes: List[ProcessorNode] = None):
        self.generations = list(generations or GENERATIONS)
        self.nodes = list(nodes or NODES)

    def requirement_series(self) -> List[dict]:
        return [{"generation": g.name, "year": g.year,
                 "mips": security_processing_mips(g)}
                for g in self.generations]

    def capability_series(self) -> List[dict]:
        return [{"node": n.name, "year": n.year,
                 "mips": embedded_processor_mips(n)}
                for n in self.nodes]

    def _capability_at(self, year: int) -> float:
        eligible = [n for n in self.nodes if n.year <= year]
        node = eligible[-1] if eligible else self.nodes[0]
        return embedded_processor_mips(node)

    def gap_series(self) -> List[dict]:
        """Requirement / capability ratio per generation year."""
        rows = []
        for g in self.generations:
            need = security_processing_mips(g)
            have = self._capability_at(g.year)
            rows.append({"generation": g.name, "year": g.year,
                         "required_mips": need, "available_mips": have,
                         "gap_ratio": need / have})
        return rows

    def gap_widens(self) -> bool:
        """The paper's headline claim: the gap grows over generations."""
        ratios = [row["gap_ratio"] for row in self.gap_series()]
        return all(b > a for a, b in zip(ratios, ratios[1:]))
