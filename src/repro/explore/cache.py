"""Persistent exploration result store.

Exploring the 450-candidate modexp space natively is cheap next to the
ISS (the paper's headline), but at minutes per full sweep it is still
worth never paying twice.  This store gives :class:`~repro.explore
.explorer.AlgorithmExplorer` the same "content-keyed, stale-is-a-miss"
persistence :mod:`repro.costs.cache` gives characterization:

- :func:`exploration_digest` content-keys one sweep *context*: the
  fitted macro-model set (platform) plus the workload (key, ciphertext,
  operation count).  Any change to either re-keys the store, so cached
  cycle estimates can never leak across platforms or workloads.
- Within one context, rows are keyed per candidate by the full
  :class:`~repro.crypto.modexp.ModExpConfig` field dict -- evaluated
  results are flushed incrementally (per completed chunk), which is
  what makes ``--resume`` after an interruption free.
- Disk entries live beside the characterization cache (one
  ``explore-<digest>.json`` per context, honoring
  ``$REPRO_COSTS_CACHE_DIR``); unreadable or old-schema entries are
  treated as misses and rewritten.
"""

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional

from repro.macromodel.model import MacroModelSet
from repro.macromodel.persist import modelset_to_dict

_STORE_SCHEMA = 1


def config_key(config) -> str:
    """Canonical row key for one candidate (full field dict, so two
    configs differing in any dimension never share a row)."""
    return json.dumps(asdict(config), sort_keys=True)


def exploration_digest(models: MacroModelSet, workload) -> str:
    """Stable content hash of one sweep context (models + workload)."""
    priv = workload.keypair.private
    payload = {
        "models": modelset_to_dict(models),
        "workload": {"n": int(priv.n), "d": int(priv.d),
                     "ciphertext": workload.ciphertext,
                     "operations": workload.operations},
    }
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:20]


@dataclass
class ExplorationStore:
    """In-process memo + optional on-disk JSON store of evaluated
    candidates, grouped by sweep-context digest."""

    cache_dir: Optional[str] = None
    enabled: bool = True
    _memo: Dict[str, Dict[str, dict]] = field(default_factory=dict,
                                              repr=False)

    @classmethod
    def from_global_cache(cls) -> "ExplorationStore":
        """A store co-located with the process-global characterization
        cache (same directory, same enablement)."""
        from repro.costs.cache import get_cache
        cache = get_cache()
        return cls(cache_dir=cache.cache_dir, enabled=cache.enabled)

    @property
    def persistent(self) -> bool:
        return bool(self.enabled and self.cache_dir)

    def path_for(self, digest: str) -> Optional[str]:
        if not self.cache_dir:
            return None
        return os.path.join(self.cache_dir, f"explore-{digest}.json")

    def rows_for(self, digest: str) -> Dict[str, dict]:
        """All stored rows for one sweep context (config key -> row).

        The returned dict is live: callers add rows to it and
        :meth:`flush` persists the whole context.
        """
        if not self.enabled:
            return {}
        rows = self._memo.get(digest)
        if rows is None:
            rows = self._load_disk(digest)
            self._memo[digest] = rows
        return rows

    def _load_disk(self, digest: str) -> Dict[str, dict]:
        path = self.path_for(digest)
        if not path or not os.path.exists(path):
            return {}
        try:
            with open(path) as fh:
                entry = json.load(fh)
            if (entry.get("schema") != _STORE_SCHEMA
                    or entry.get("digest") != digest):
                return {}        # stale can cost time, never correctness
            rows = entry.get("rows")
            return rows if isinstance(rows, dict) else {}
        except (OSError, ValueError):
            return {}


    def flush(self, digest: str) -> None:
        """Persist one context's rows (called after each completed
        chunk, so an interrupted sweep keeps everything finished)."""
        path = self.path_for(digest)
        if not path or not self.enabled:
            return
        rows = self._memo.get(digest)
        if rows is None:
            return
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
            entry = {"schema": _STORE_SCHEMA, "digest": digest,
                     "rows": rows}
            tmp = path + ".tmp"
            with open(tmp, "w") as fh:
                json.dump(entry, fh, indent=2, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            pass                 # a read-only store never fails the run
