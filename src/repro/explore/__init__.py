"""Algorithm design-space exploration (paper Sections 3.2 and 4.3).

Exhaustively evaluates the 450-candidate modular exponentiation space
(:mod:`repro.crypto.modexp`) using macro-model-based native estimation,
which the paper shows is orders of magnitude cheaper than evaluating
candidates on the instruction-set simulator.
"""

from repro.explore.cache import ExplorationStore, exploration_digest
from repro.explore.explorer import (AlgorithmExplorer, ExplorationResult,
                                    ExplorationRun, RsaDecryptWorkload)

__all__ = ["AlgorithmExplorer", "ExplorationResult", "ExplorationRun",
           "ExplorationStore", "RsaDecryptWorkload", "exploration_digest"]
