"""Exhaustive macro-model-driven exploration of the modexp space.

Each candidate configuration is *executed natively* on a fixed RSA
decryption workload with the platform's macro-models charging cycles
per leaf-routine call; candidates are then ranked by estimated cycles.
The paper evaluated 450+ candidates in under 4h40m this way, against
66 hours for only six candidates on the ISS.

Candidates are independent, so :meth:`AlgorithmExplorer.explore` fans
them across workers through :mod:`repro.parallel`: deterministic
chunks, each worker building its own :class:`ModExpEngine` per
candidate, results merged in candidate order -- so any ``jobs`` count
yields exactly the serial result list.  Evaluated candidates are also
flushed (per completed chunk) into a persistent
:class:`~repro.explore.cache.ExplorationStore`, making warm re-runs
and ``--resume`` after an interruption free.
"""

import time
from dataclasses import asdict, dataclass
from typing import Callable, Iterable, List, Optional

from repro.crypto.modexp import ModExpConfig, ModExpEngine, iter_configs
from repro.crypto.rsa import RsaKeyPair
from repro.explore.cache import (ExplorationStore, config_key,
                                 exploration_digest)
from repro.macromodel import MacroModelSet, estimate_cycles
from repro.obs import get_registry, get_tracer
from repro.parallel import chunked, executor_scope
from repro.ssl import fixtures


@dataclass
class RsaDecryptWorkload:
    """The exploration workload: RSA decryptions with a fixed key."""

    keypair: RsaKeyPair
    ciphertext: int = 0x1122334455667788_99AABBCCDDEEFF00
    operations: int = 1

    @classmethod
    def bits512(cls) -> "RsaDecryptWorkload":
        return cls(keypair=fixtures.SERVER_512)

    @classmethod
    def bits1024(cls) -> "RsaDecryptWorkload":
        return cls(keypair=fixtures.SERVER_1024)

    def run(self, engine: ModExpEngine) -> int:
        priv = self.keypair.private
        c = self.ciphertext % int(priv.n)
        result = 0
        for _ in range(self.operations):
            result = int(engine.powm_crt(c, priv.d, priv.p, priv.q,
                                         priv.dp, priv.dq, priv.qinv))
        return result


@dataclass
class ExplorationResult:
    """One evaluated candidate."""

    config: ModExpConfig
    estimated_cycles: float
    wall_seconds: float
    correct: bool

    @property
    def label(self) -> str:
        return self.config.label()

    def as_dict(self) -> dict:
        """JSON-ready row (the CLI's shared serialization path)."""
        return {"label": self.label,
                "estimated_cycles": self.estimated_cycles,
                "wall_seconds": self.wall_seconds,
                "correct": self.correct}


@dataclass
class ExplorationRun:
    """Bookkeeping for the last :meth:`AlgorithmExplorer.explore` call.

    ``wall_seconds`` is end-to-end elapsed time; ``candidate_wall_
    seconds`` aggregates the per-candidate evaluation walls, so their
    ratio is the achieved parallel speedup (for a serial run it is
    slightly below 1.0 -- the sweep's own overhead).
    """

    candidates: int = 0
    evaluated: int = 0
    cached: int = 0
    chunks: int = 0
    jobs: int = 1
    executor: str = "serial"
    wall_seconds: float = 0.0
    candidate_wall_seconds: float = 0.0

    @property
    def parallel_speedup(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.candidate_wall_seconds / self.wall_seconds

    def as_dict(self) -> dict:
        data = asdict(self)
        data["parallel_speedup"] = self.parallel_speedup
        return data


def _row_from_result(result: ExplorationResult, spec: dict) -> dict:
    """Store/transport row for one evaluated candidate."""
    return {"config": spec, "label": result.label,
            "estimated_cycles": result.estimated_cycles,
            "wall_seconds": result.wall_seconds,
            "correct": result.correct}


def _result_from_row(row: dict) -> ExplorationResult:
    return ExplorationResult(config=ModExpConfig(**row["config"]),
                             estimated_cycles=row["estimated_cycles"],
                             wall_seconds=row["wall_seconds"],
                             correct=row["correct"])


def _evaluate_chunk(payload) -> List[dict]:
    """Evaluate one chunk of candidates; returns store rows.

    Module-level with a picklable ``(models, workload, config dicts)``
    payload so :class:`repro.parallel.ProcessExecutor` can ship it to a
    worker, which builds its own explorer (and per-candidate engines).
    """
    models, workload, specs = payload
    explorer = AlgorithmExplorer(models, workload)
    return [_row_from_result(explorer.evaluate(ModExpConfig(**spec)), spec)
            for spec in specs]


class AlgorithmExplorer:
    """Evaluates candidate configurations against a workload."""

    def __init__(self, models: MacroModelSet,
                 workload: Optional[RsaDecryptWorkload] = None):
        self.models = models
        self.workload = workload or RsaDecryptWorkload.bits512()
        priv = self.workload.keypair.private
        c = self.workload.ciphertext % int(priv.n)
        self._expected = pow(c, int(priv.d), int(priv.n))
        self.last_run = ExplorationRun()

    def evaluate(self, config: ModExpConfig) -> ExplorationResult:
        """Estimate one candidate's cycles (and check its correctness)."""
        engine = ModExpEngine(config)
        start = time.perf_counter()
        estimate = estimate_cycles(self.models, self.workload.run, engine)
        wall = time.perf_counter() - start
        return ExplorationResult(config=config,
                                 estimated_cycles=estimate.cycles,
                                 wall_seconds=wall,
                                 correct=estimate.result == self._expected)

    def explore(self, configs: Optional[Iterable[ModExpConfig]] = None,
                progress: Optional[Callable[[int, ExplorationResult], None]]
                = None, jobs: Optional[int] = None, executor=None,
                store: Optional[ExplorationStore] = None
                ) -> List[ExplorationResult]:
        """Evaluate candidates (the full 450 by default); best first.

        ``jobs``/``executor`` fan evaluation across workers; results
        are merged in candidate order, so the returned list is
        identical for any worker count.  ``store`` (default: one
        co-located with the global characterization cache) supplies
        already-evaluated candidates and receives newly evaluated ones
        chunk-by-chunk; a warm store evaluates nothing.
        """
        tracer = get_tracer()
        registry = get_registry()
        configs = list(configs) if configs is not None else list(iter_configs())
        start = time.perf_counter()
        if store is None:
            store = ExplorationStore.from_global_cache()
        digest = (exploration_digest(self.models, self.workload)
                  if store.enabled else None)
        rows = store.rows_for(digest) if digest is not None else {}

        slots: List[Optional[ExplorationResult]] = [None] * len(configs)
        pending = []
        for index, config in enumerate(configs):
            row = rows.get(config_key(config))
            if row is not None:
                slots[index] = _result_from_row(row)
            else:
                pending.append((index, config))
        cached = len(configs) - len(pending)
        if cached:
            registry.counter("explore.cache.hit").inc(cached)
        if pending:
            registry.counter("explore.cache.miss").inc(len(pending))

        with tracer.span("explore.run", candidates=len(configs),
                         cached=cached), \
                executor_scope(jobs, executor) as pool:
            for index, result in enumerate(slots):
                if result is not None and progress is not None:
                    progress(index, result)

            chunks = chunked(pending, pool.jobs)
            payloads = [(self.models, self.workload,
                         [asdict(config) for _, config in chunk])
                        for chunk in chunks]

            def on_chunk(chunk_index: int, chunk_rows: List[dict]) -> None:
                for (index, config), row in zip(chunks[chunk_index],
                                                chunk_rows):
                    result = _result_from_row(row)
                    slots[index] = result
                    rows[config_key(config)] = row
                    registry.counter("explore.candidates").inc()
                    if result.correct:
                        registry.counter("explore.candidates_correct").inc()
                    if progress is not None:
                        progress(index, result)
                if digest is not None:
                    store.flush(digest)

            pool.map(_evaluate_chunk, payloads, on_result=on_chunk,
                     label="explore")
            run = ExplorationRun(
                candidates=len(configs), evaluated=len(pending),
                cached=cached, chunks=len(chunks), jobs=pool.jobs,
                executor=pool.kind,
                candidate_wall_seconds=sum(
                    slots[index].wall_seconds for index, _ in pending))

        run.wall_seconds = time.perf_counter() - start
        self.last_run = run
        results = [r for r in slots if r is not None]
        results.sort(key=lambda r: r.estimated_cycles)
        if results:
            registry.gauge("explore.best_cycles").set(
                results[0].estimated_cycles)
        return results

    @staticmethod
    def best(results: List[ExplorationResult]) -> ExplorationResult:
        correct = [r for r in results if r.correct]
        if not correct:
            raise ValueError("no functionally correct candidate found")
        return min(correct, key=lambda r: r.estimated_cycles)
