"""Exhaustive macro-model-driven exploration of the modexp space.

Each candidate configuration is *executed natively* on a fixed RSA
decryption workload with the platform's macro-models charging cycles
per leaf-routine call; candidates are then ranked by estimated cycles.
The paper evaluated 450+ candidates in under 4h40m this way, against
66 hours for only six candidates on the ISS.
"""

import time
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from repro.crypto.modexp import ModExpConfig, ModExpEngine, iter_configs
from repro.crypto.rsa import RsaKeyPair
from repro.macromodel import MacroModelSet, estimate_cycles
from repro.obs import get_registry, get_tracer
from repro.ssl import fixtures


@dataclass
class RsaDecryptWorkload:
    """The exploration workload: RSA decryptions with a fixed key."""

    keypair: RsaKeyPair
    ciphertext: int = 0x1122334455667788_99AABBCCDDEEFF00
    operations: int = 1

    @classmethod
    def bits512(cls) -> "RsaDecryptWorkload":
        return cls(keypair=fixtures.SERVER_512)

    @classmethod
    def bits1024(cls) -> "RsaDecryptWorkload":
        return cls(keypair=fixtures.SERVER_1024)

    def run(self, engine: ModExpEngine) -> int:
        priv = self.keypair.private
        c = self.ciphertext % int(priv.n)
        result = 0
        for _ in range(self.operations):
            result = int(engine.powm_crt(c, priv.d, priv.p, priv.q,
                                         priv.dp, priv.dq, priv.qinv))
        return result


@dataclass
class ExplorationResult:
    """One evaluated candidate."""

    config: ModExpConfig
    estimated_cycles: float
    wall_seconds: float
    correct: bool

    @property
    def label(self) -> str:
        return self.config.label()

    def as_dict(self) -> dict:
        """JSON-ready row (the CLI's shared serialization path)."""
        return {"label": self.label,
                "estimated_cycles": self.estimated_cycles,
                "correct": self.correct}


class AlgorithmExplorer:
    """Evaluates candidate configurations against a workload."""

    def __init__(self, models: MacroModelSet,
                 workload: Optional[RsaDecryptWorkload] = None):
        self.models = models
        self.workload = workload or RsaDecryptWorkload.bits512()
        priv = self.workload.keypair.private
        c = self.workload.ciphertext % int(priv.n)
        self._expected = pow(c, int(priv.d), int(priv.n))

    def evaluate(self, config: ModExpConfig) -> ExplorationResult:
        """Estimate one candidate's cycles (and check its correctness)."""
        engine = ModExpEngine(config)
        start = time.perf_counter()
        estimate = estimate_cycles(self.models, self.workload.run, engine)
        wall = time.perf_counter() - start
        return ExplorationResult(config=config,
                                 estimated_cycles=estimate.cycles,
                                 wall_seconds=wall,
                                 correct=estimate.result == self._expected)

    def explore(self, configs: Optional[Iterable[ModExpConfig]] = None,
                progress: Optional[Callable[[int, ExplorationResult], None]]
                = None) -> List[ExplorationResult]:
        """Evaluate candidates (the full 450 by default); best first."""
        tracer = get_tracer()
        registry = get_registry()
        results = []
        with tracer.span("explore.run"):
            for index, config in enumerate(configs or iter_configs()):
                with tracer.span("explore.candidate",
                                 label=config.label()):
                    result = self.evaluate(config)
                registry.counter("explore.candidates").inc()
                if result.correct:
                    registry.counter("explore.candidates_correct").inc()
                results.append(result)
                if progress is not None:
                    progress(index, result)
        results.sort(key=lambda r: r.estimated_cycles)
        registry.gauge("explore.best_cycles").set(
            results[0].estimated_cycles if results else 0.0)
        return results

    @staticmethod
    def best(results: List[ExplorationResult]) -> ExplorationResult:
        correct = [r for r in results if r.correct]
        if not correct:
            raise ValueError("no functionally correct candidate found")
        return min(correct, key=lambda r: r.estimated_cycles)
