"""Joint hardware/software co-design exploration (paper Section 3.1).

The outer loop of the methodology: "Inadequacies in performance are
addressed through further refinements to the HW or SW parts by
iterating the steps ... with either relaxed area constraints,
additional candidate algorithms, or additional custom instruction
candidates."

:class:`CodesignExplorer` sweeps hardware configurations (custom
instruction widths, each with a characterized macro-model set and an
area cost) jointly with a slice of the algorithm space, and selects the
best (hardware, algorithm) pair under an area budget -- the true
co-design optimum, which is *not* in general the best algorithm on the
best hardware evaluated independently.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.crypto.modexp import ModExpConfig
from repro.explore.explorer import AlgorithmExplorer, RsaDecryptWorkload
from repro.isa.custom import (make_vaddc, make_vmac, make_vmsub, make_vmul1,
                              make_vsubb)
from repro.macromodel import MacroModelSet


@dataclass(frozen=True)
class HardwareConfig:
    """One candidate processor configuration for the mp datapath."""

    add_width: int
    mac_width: int

    @property
    def is_base(self) -> bool:
        return self.add_width == 0 and self.mac_width == 0

    @property
    def area(self) -> float:
        """Gate-equivalent overhead of this configuration's instructions."""
        if self.is_base:
            return 0.0
        instrs = [make_vaddc(self.add_width), make_vsubb(self.add_width),
                  make_vmac(self.mac_width), make_vmsub(self.mac_width),
                  make_vmul1(self.mac_width)]
        return sum(i.area for i in instrs)

    def label(self) -> str:
        if self.is_base:
            return "base"
        return f"add{self.add_width}/mac{self.mac_width}"


#: The default hardware sweep: the base core plus widening datapaths.
DEFAULT_HW_SWEEP = (
    HardwareConfig(0, 0),
    HardwareConfig(2, 1),
    HardwareConfig(4, 2),
    HardwareConfig(8, 4),
    HardwareConfig(8, 8),
)

#: A representative software slice: the exploration winners plus the
#: reference point, so HW/SW interaction is visible without the full
#: 450-point sweep per hardware candidate.
DEFAULT_SW_SLICE = (
    ModExpConfig(modmul="schoolbook", window=1, crt="none",
                 caching="none"),
    ModExpConfig(modmul="barrett", window=4, crt="garner"),
    ModExpConfig(modmul="montgomery", window=4, crt="garner"),
    ModExpConfig(modmul="montgomery", window=5, crt="garner",
                 caching="constants"),
)


@dataclass
class CodesignPoint:
    """One (hardware, algorithm) pair with its cost metrics."""

    hardware: HardwareConfig
    software: ModExpConfig
    estimated_cycles: float
    area: float

    def label(self) -> str:
        return f"{self.hardware.label()} + {self.software.label()}"


class CodesignExplorer:
    """Sweeps (HW config x SW config) and selects under an area budget."""

    def __init__(self, workload: Optional[RsaDecryptWorkload] = None,
                 models_by_hw: Optional[Dict[HardwareConfig,
                                             MacroModelSet]] = None):
        self.workload = workload or RsaDecryptWorkload.bits512()
        self._models_by_hw = dict(models_by_hw or {})

    def models_for(self, hw: HardwareConfig) -> MacroModelSet:
        """Characterized models for ``hw``, via the shared cache (one
        characterization per configuration, ever)."""
        if hw not in self._models_by_hw:
            from repro.costs.cache import characterize_cached
            self._models_by_hw[hw] = characterize_cached(
                hw.add_width, hw.mac_width)
        return self._models_by_hw[hw]

    def sweep(self, hw_configs: Sequence[HardwareConfig] = DEFAULT_HW_SWEEP,
              sw_configs: Sequence[ModExpConfig] = DEFAULT_SW_SLICE
              ) -> List[CodesignPoint]:
        """Evaluate the full product; returns points sorted by cycles."""
        points = []
        for hw in hw_configs:
            explorer = AlgorithmExplorer(self.models_for(hw), self.workload)
            for sw in sw_configs:
                result = explorer.evaluate(sw)
                if not result.correct:  # pragma: no cover - safety net
                    continue
                points.append(CodesignPoint(
                    hardware=hw, software=sw,
                    estimated_cycles=result.estimated_cycles,
                    area=hw.area))
        points.sort(key=lambda p: p.estimated_cycles)
        return points

    @staticmethod
    def select(points: Sequence[CodesignPoint],
               area_budget: float) -> CodesignPoint:
        """Fastest joint configuration within the area budget."""
        feasible = [p for p in points if p.area <= area_budget]
        if not feasible:
            raise ValueError(f"no configuration fits area {area_budget}")
        return min(feasible, key=lambda p: (p.estimated_cycles, p.area))

    @staticmethod
    def pareto(points: Sequence[CodesignPoint]) -> List[CodesignPoint]:
        """Area-cycles Pareto frontier of the joint space."""
        frontier = []
        for candidate in sorted(points, key=lambda p: (p.area,
                                                       p.estimated_cycles)):
            if all(candidate.estimated_cycles < kept.estimated_cycles
                   or candidate.area < kept.area for kept in frontier):
                if not any(kept.area <= candidate.area
                           and kept.estimated_cycles
                           <= candidate.estimated_cycles
                           for kept in frontier):
                    frontier.append(candidate)
        return frontier
