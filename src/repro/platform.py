"""The security processing platform facade.

Ties the co-design outputs together: a processor configuration (base
XT32, or XT32 plus the selected custom instruction extensions), the
tuned software configuration from algorithm exploration, and the
per-platform performance macro-models.  The SSL workload model, the
examples, and the Table 1 benchmark all consume platforms through this
class.

Two stock configurations mirror the paper's comparison:

- :meth:`SecurityPlatform.base` -- the reference software library
  (schoolbook modular multiplication, binary exponentiation, no CRT)
  running on the unextended core.
- :meth:`SecurityPlatform.optimized` -- the exploration winner
  (Montgomery + 5-bit windows + Garner CRT + cached constants) running
  on the extended core with the selected custom instructions.
"""

import functools
from typing import Optional

from repro.crypto.api import SecurityApi
from repro.crypto.modexp import ModExpConfig
from repro.crypto.rsa import Rsa, RsaKeyPair
from repro.isa.kernels.aes_kernels import AesKernel
from repro.isa.kernels.des_kernels import DesKernel
from repro.isa.kernels.hash_kernels import Sha1Kernel
from repro.isa.kernels.kasumi_kernels import KasumiKernel
from repro.macromodel import MacroModelSet
from repro.mp import DeterministicPrng

#: Reference software configuration (the "well-optimized C library"
#: baseline of Table 1: correct and careful, but algorithmically plain).
REFERENCE_CONFIG = ModExpConfig(modmul="schoolbook", window=1, crt="none",
                                radix_bits=32, caching="none")

#: Exploration winner (Section 4.3): Montgomery multiplication, 5-bit
#: exponent windows, Garner CRT recombination, cached per-key constants.
TUNED_CONFIG = ModExpConfig(modmul="montgomery", window=5, crt="garner",
                            radix_bits=32, caching="constants")


class SecurityPlatform:
    """One point of the co-design space: processor config + SW config."""

    def __init__(self, name: str, modexp_config: ModExpConfig,
                 add_width: int = 0, mac_width: int = 0,
                 des_sbox_units: int = 8, aes_sbox_units: int = 8,
                 aes_mixcol_units: int = 2,
                 models: Optional[MacroModelSet] = None):
        self.name = name
        self.modexp_config = modexp_config
        self.add_width = add_width
        self.mac_width = mac_width
        self.des_sbox_units = des_sbox_units
        self.aes_sbox_units = aes_sbox_units
        self.aes_mixcol_units = aes_mixcol_units
        self.extended = bool(add_width and mac_width)
        self._models = models

    # -- stock configurations ------------------------------------------------

    @classmethod
    def base(cls, models: Optional[MacroModelSet] = None) -> "SecurityPlatform":
        return cls("base", REFERENCE_CONFIG, models=models)

    @classmethod
    def optimized(cls, add_width: int = 8, mac_width: int = 8,
                  models: Optional[MacroModelSet] = None) -> "SecurityPlatform":
        return cls("optimized", TUNED_CONFIG, add_width=add_width,
                   mac_width=mac_width, models=models)

    # -- lazily built components ------------------------------------------------

    @property
    def models(self) -> MacroModelSet:
        """The platform's characterized macro-models (built on demand).

        Resolution goes through the process-global characterization
        cache (:mod:`repro.costs.cache`), so every platform with the
        same configuration shares one characterization pass -- and a
        warm disk cache shares it across processes.
        """
        if self._models is None:
            from repro.costs.cache import characterize_cached
            self._models = characterize_cached(self.add_width,
                                               self.mac_width)
        return self._models

    @functools.cached_property
    def des_kernel(self) -> DesKernel:
        return DesKernel(extended=self.extended,
                         sbox_units=self.des_sbox_units)

    @functools.cached_property
    def aes_kernel(self) -> AesKernel:
        return AesKernel(extended=self.extended,
                         sbox_units=self.aes_sbox_units,
                         mixcol_units=self.aes_mixcol_units)

    @functools.cached_property
    def sha1_kernel(self) -> Sha1Kernel:
        return Sha1Kernel()

    @functools.cached_property
    def kasumi_kernel(self) -> KasumiKernel:
        # Base-ISA only (no TIE variant), so like SHA-1 and RC4 the
        # rate is identical on both platforms.
        return KasumiKernel()

    def api(self, prng: Optional[DeterministicPrng] = None) -> SecurityApi:
        """A Layer-3 security API bound to this platform's SW config."""
        return SecurityApi(self.modexp_config, prng)

    def rsa(self) -> Rsa:
        return Rsa(self.modexp_config)

    # -- measured/estimated costs ------------------------------------------------

    def cipher_cycles_per_byte(self, algorithm: str) -> float:
        """ISS-measured bulk cipher cost on this platform."""
        algorithm = algorithm.lower()
        if algorithm == "des":
            return self.des_kernel.cycles_per_byte(blocks=2)
        if algorithm == "3des":
            return self.des_kernel.cycles_per_byte(blocks=2, triple=True)
        if algorithm == "aes":
            return self.aes_kernel.cycles_per_byte(blocks=2)
        if algorithm == "kasumi":
            return self.kasumi_kernel.cycles_per_byte(blocks=2)
        raise ValueError(f"unknown bulk cipher {algorithm!r}")

    def hash_cycles_per_byte(self) -> float:
        """SHA-1 cost; identical on both platforms (not accelerated)."""
        return self.sha1_kernel.cycles_per_byte()

    def rsa_public_cycles(self, keypair: RsaKeyPair,
                          message: int = 0x1234567) -> float:
        """Macro-model estimate of one RSA public operation."""
        from repro.costs.backends import MacroModelBackend
        return MacroModelBackend().rsa_public_cycles(self, keypair,
                                                     message)

    def rsa_private_cycles(self, keypair: RsaKeyPair,
                           message: int = 0x1234567) -> float:
        """Macro-model estimate of one RSA private operation."""
        from repro.costs.backends import MacroModelBackend
        return MacroModelBackend().rsa_private_cycles(self, keypair,
                                                      message)

    def costs(self, keypair: Optional[RsaKeyPair] = None,
              cipher: str = "3des", backend=None):
        """This platform's full unit-cost vocabulary
        (:class:`repro.costs.PlatformCosts`) through a cost backend."""
        from repro.costs import PlatformCosts
        return PlatformCosts.measure(self, keypair, cipher,
                                     backend=backend)
