"""Multi-precision arithmetic substrate (GNU GMP substitute).

The paper builds its public-key software layers on GNU GMP's ``mpn``
(limb-vector) and ``mpz`` (signed integer) layers.  This package is a
from-scratch reimplementation of the subset the security platform
needs, with the same structural split:

- :mod:`repro.mp.mpn` -- low-level primitives on vectors of limbs
  (``add_n``, ``sub_n``, ``mul_1``, ``addmul_1``, ...).  These are the
  *leaf routines* that the methodology characterizes, macro-models and
  accelerates with custom instructions.
- :mod:`repro.mp.mpz` -- sign-magnitude arbitrary-precision integers
  built on the mpn layer.
- :mod:`repro.mp.hooks` -- a tracing hook that reports every leaf
  routine invocation (name + size parameters) so the macro-modeling
  layer can estimate cycle counts during native execution.
- :mod:`repro.mp.prng` -- a small deterministic PRNG so every
  experiment in the repository is reproducible.
- :mod:`repro.mp.mpn_fast` -- flat (packed-bignum) implementations of
  the hottest mpn routines, value- and trace-identical to the
  reference loops.  Select with :func:`select_backend` or the
  ``REPRO_MPN_BACKEND`` environment variable.
"""

import os
from contextlib import contextmanager

from repro.mp.limb import Radix, RADIX16, RADIX32
from repro.mp.mpz import Mpz
from repro.mp.prng import DeterministicPrng

#: Environment variable naming the default mpn backend.
MPN_BACKEND_ENV = "REPRO_MPN_BACKEND"

_MPN_BACKENDS = {"reference": "reference", "ref": "reference",
                 "fast": "fast"}


def select_backend(name=None) -> str:
    """Install the named mpn backend; returns the canonical name.

    ``None`` resolves through ``REPRO_MPN_BACKEND`` and falls back to
    ``"reference"``.  Accepted names: ``reference`` (alias ``ref``)
    and ``fast``.
    """
    from repro.mp import mpn_fast
    if name is None:
        name = os.environ.get(MPN_BACKEND_ENV, "") or "reference"
    canonical = _MPN_BACKENDS.get(str(name).strip().lower())
    if canonical is None:
        raise ValueError(f"unknown mpn backend {name!r} "
                         f"(expected 'reference' or 'fast')")
    if canonical == "fast":
        mpn_fast.install()
    else:
        mpn_fast.uninstall()
    return canonical


def active_backend() -> str:
    """Name of the mpn backend currently installed."""
    from repro.mp import mpn_fast
    return "fast" if mpn_fast.installed() else "reference"


@contextmanager
def mpn_backend(name):
    """Scoped backend override: restores the previous backend on exit."""
    previous = active_backend()
    select_backend(name)
    try:
        yield
    finally:
        select_backend(previous)


# Honour the environment default at import, so e.g. a CI job exporting
# REPRO_MPN_BACKEND=fast runs the whole suite on the fast backend.
if os.environ.get(MPN_BACKEND_ENV):
    select_backend()

__all__ = ["Radix", "RADIX16", "RADIX32", "Mpz", "DeterministicPrng",
           "MPN_BACKEND_ENV", "select_backend", "active_backend",
           "mpn_backend"]
