"""Multi-precision arithmetic substrate (GNU GMP substitute).

The paper builds its public-key software layers on GNU GMP's ``mpn``
(limb-vector) and ``mpz`` (signed integer) layers.  This package is a
from-scratch reimplementation of the subset the security platform
needs, with the same structural split:

- :mod:`repro.mp.mpn` -- low-level primitives on vectors of limbs
  (``add_n``, ``sub_n``, ``mul_1``, ``addmul_1``, ...).  These are the
  *leaf routines* that the methodology characterizes, macro-models and
  accelerates with custom instructions.
- :mod:`repro.mp.mpz` -- sign-magnitude arbitrary-precision integers
  built on the mpn layer.
- :mod:`repro.mp.hooks` -- a tracing hook that reports every leaf
  routine invocation (name + size parameters) so the macro-modeling
  layer can estimate cycle counts during native execution.
- :mod:`repro.mp.prng` -- a small deterministic PRNG so every
  experiment in the repository is reproducible.
"""

from repro.mp.limb import Radix, RADIX16, RADIX32
from repro.mp.mpz import Mpz
from repro.mp.prng import DeterministicPrng

__all__ = ["Radix", "RADIX16", "RADIX32", "Mpz", "DeterministicPrng"]
