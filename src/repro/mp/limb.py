"""Limb (machine-word) parameters for the mpn layer.

The paper's design-space exploration includes *two radix sizes* for the
multi-precision routines (Section 4.3: "two radix sizes").  A
:class:`Radix` bundles the limb width and derived masks; ``RADIX32``
models the native 32-bit Xtensa word, ``RADIX16`` the half-word radix
that trades more limbs for cheaper partial products.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Radix:
    """Limb width configuration for the mpn primitives.

    Attributes:
        bits: number of bits per limb.
        base: 2**bits.
        mask: base - 1, used to split double-width partial products.
    """

    bits: int

    @property
    def base(self) -> int:
        return 1 << self.bits

    @property
    def mask(self) -> int:
        return (1 << self.bits) - 1

    def limbs_for_bits(self, nbits: int) -> int:
        """Number of limbs needed to hold an ``nbits``-bit value."""
        if nbits <= 0:
            return 1
        return (nbits + self.bits - 1) // self.bits

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Radix({self.bits})"


RADIX32 = Radix(32)
RADIX16 = Radix(16)

#: Default radix used by Mpz and the crypto layers unless overridden.
DEFAULT_RADIX = RADIX32
