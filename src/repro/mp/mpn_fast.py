"""Specialized fast implementations of the hot mpn routines.

The reference :mod:`repro.mp.mpn` loops limb by limb -- the faithful
form of the target's assembly, but the dominant Python-side cost of
every modexp-heavy experiment.  This module provides *flat*
replacements for the hottest routines: operands are packed into one
Python int, the whole operation runs on native bignum arithmetic, and
the result is unpacked back into limbs.

The replacements are drop-in equivalent on two axes, both enforced by
the test suite and the ``mpn_fast`` bench scenario:

- **Values**: identical result limbs and carries/borrows for every
  input, at every radix.
- **Traces**: identical :func:`repro.mp.hooks.trace` call sequences
  (names, order, and size parameters), so macro-model cycle estimates
  -- and therefore every recorded baseline -- are byte-identical.
  This includes the data-dependent Knuth D6 add-back path in
  :func:`divrem`: the fast version runs the same quotient-digit
  estimate and correction, so the ``mpn_add_n`` add-back trace fires
  on exactly the same iterations as the reference.

:func:`install` rebinds the fast routines into the :mod:`repro.mp.mpn`
module namespace (callers go through ``mpn.<name>`` attribute or
module-global lookups, so rebinding reaches them all);
:func:`uninstall` restores the references.  Select via
:func:`repro.mp.select_backend` or the ``REPRO_MPN_BACKEND``
environment variable.

:func:`sqr` flattens only below ``mpn.KARATSUBA_THRESHOLD`` (looked up
dynamically, so threshold ablations still work) and delegates larger
operands to :func:`repro.mp.mpn.mul` -- the Karatsuba trace sequence
is size-dependent, and the recursion's base cases land back on the
fast :func:`mul_basecase` anyway.
"""

from typing import List, Tuple

from repro.mp import mpn
from repro.mp.hooks import trace
from repro.mp.limb import DEFAULT_RADIX, Radix

Limbs = List[int]


def _pack(limbs: Limbs, bits: int) -> int:
    """Limb vector (LS limb first) -> one Python int."""
    value = 0
    for limb in reversed(limbs):
        value = (value << bits) | limb
    return value


def _unpack(value: int, count: int, bits: int, mask: int) -> Limbs:
    """Low ``count`` limbs of ``value`` as a vector (LS limb first)."""
    out = []
    for _ in range(count):
        out.append(value & mask)
        value >>= bits
    return out


# ---------------------------------------------------------------------------
# Leaf replacements
# ---------------------------------------------------------------------------

def addmul_1(rp: Limbs, up: Limbs, v: int,
             radix: Radix = DEFAULT_RADIX) -> Tuple[Limbs, int]:
    """rp += up * v (equal lengths); return (new rp, carry limb)."""
    if len(rp) != len(up):
        raise ValueError("addmul_1 requires equal-length operands")
    trace("mpn_addmul_1", n=len(up))
    bits, mask = radix.bits, radix.mask
    t = _pack(rp, bits) + _pack(up, bits) * v
    out = []
    for _ in range(len(up)):
        out.append(t & mask)
        t >>= bits
    return out, t


def _addmul_1_into(rp: Limbs, offset: int, up: Limbs, v: int,
                   radix: Radix = DEFAULT_RADIX) -> int:
    """rp[offset:offset+len(up)] += up * v in place; return carry limb."""
    trace("mpn_addmul_1", n=len(up))
    bits, mask = radix.bits, radix.mask
    n = len(up)
    t = _pack(rp[offset:offset + n], bits) + _pack(up, bits) * v
    for i in range(offset, offset + n):
        rp[i] = t & mask
        t >>= bits
    return t


def mul_basecase(up: Limbs, vp: Limbs,
                 radix: Radix = DEFAULT_RADIX) -> Limbs:
    """Schoolbook product of two vectors (length = len(up)+len(vp)).

    One flat bignum multiply; emits the reference's trace sequence
    (one ``mpn_mul_1`` then ``len(vp)-1`` ``mpn_addmul_1`` calls, all
    at ``n=len(up)``).
    """
    un, vn = len(up), len(vp)
    trace("mpn_mul_1", n=un)
    for _ in range(1, vn):
        trace("mpn_addmul_1", n=un)
    bits = radix.bits
    return _unpack(_pack(up, bits) * _pack(vp, bits), un + vn,
                   bits, radix.mask)


def sqr(up: Limbs, radix: Radix = DEFAULT_RADIX) -> Limbs:
    """Square of a vector; flat below the Karatsuba threshold."""
    up = mpn.normalize(up)
    if up == [0]:
        return [0]
    n = len(up)
    if n >= mpn.KARATSUBA_THRESHOLD:
        # Karatsuba traces are size-dependent; take the reference
        # driver (its base cases resolve to the fast mul_basecase).
        return mpn.mul(up, up, radix)
    trace("mpn_mul_1", n=n)
    for _ in range(1, n):
        trace("mpn_addmul_1", n=n)
    bits = radix.bits
    t = _pack(up, bits)
    return mpn.normalize(_unpack(t * t, 2 * n, bits, radix.mask))


def divrem_1(up: Limbs, v: int,
             radix: Radix = DEFAULT_RADIX) -> Tuple[Limbs, int]:
    """Divide a vector by a single limb; return (quotient, remainder limb)."""
    if v == 0:
        raise ZeroDivisionError("division by zero limb")
    trace("mpn_divrem_1", n=len(up))
    bits = radix.bits
    u = _pack(up, bits)
    q = u // v
    return mpn.normalize(_unpack(q, len(up), bits, radix.mask)), u - q * v


def divrem(up: Limbs, vp: Limbs,
           radix: Radix = DEFAULT_RADIX) -> Tuple[Limbs, Limbs]:
    """Knuth Algorithm D division; return (quotient, remainder) vectors.

    The numerator lives in one Python int, but the quotient digit is
    still estimated from the top limbs with the reference's exact
    correction loop -- so ``mpn_divrem_qest``/``mpn_submul_1`` traces,
    and the data-dependent D6 add-back's ``mpn_add_n`` trace, fire
    identically.
    """
    up, vp = mpn.normalize(up), mpn.normalize(vp)
    if vp == [0]:
        raise ZeroDivisionError("mpn division by zero")
    if len(vp) == 1:
        q, r = divrem_1(up, vp[0], radix)
        return q, [r]
    bits, base, mask = radix.bits, radix.base, radix.mask
    numerator = _pack(up, bits)
    divisor = _pack(vp, bits)
    if numerator < divisor:
        return [0], up

    # D1: normalize so the divisor's top limb has its high bit set.
    shift = bits - vp[-1].bit_length()
    if shift:
        trace("mpn_lshift", n=len(vp))
        trace("mpn_lshift", n=len(up))
        divisor <<= shift
        numerator <<= shift
    n = len(vp)
    m = len(up) - n          # reference: len(un) - n - 1 with the pad limb
    vtop = (divisor >> ((n - 1) * bits)) & mask
    vnext = (divisor >> ((n - 2) * bits)) & mask
    window_mod = 1 << ((n + 1) * bits)
    qp = [0] * (m + 1)

    for j in range(m, -1, -1):
        # D3: estimate the digit from the top two/three window limbs.
        trace("mpn_divrem_qest", n=1)
        s = j * bits
        window = (numerator >> s) & (window_mod - 1)
        num = window >> ((n - 1) * bits)       # (un[j+n] << bits) | un[j+n-1]
        unext = (window >> ((n - 2) * bits)) & mask
        qhat = num // vtop
        rhat = num - qhat * vtop
        while qhat >= base or qhat * vnext > ((rhat << bits) | unext):
            qhat -= 1
            rhat += vtop
            if rhat >= base:
                break
        # D4: multiply and subtract on the window.
        trace("mpn_submul_1", n=n)
        w = window - qhat * divisor
        if w < 0:
            # D6: qhat was one too large; add back.
            qhat -= 1
            trace("mpn_add_n", n=n)
            w += divisor
        numerator += ((w % window_mod) - window) << s
        qp[j] = qhat

    rem_int = numerator & ((1 << (n * bits)) - 1)
    rem = mpn.normalize(_unpack(rem_int, n, bits, mask))
    if shift:
        trace("mpn_rshift", n=len(rem))
        rem = _unpack(rem_int >> shift, len(rem), bits, mask)
    return mpn.normalize(qp), mpn.normalize(rem)


# ---------------------------------------------------------------------------
# Backend switching
# ---------------------------------------------------------------------------

#: The mpn-module names this backend replaces.
PATCHED_ROUTINES = ("addmul_1", "_addmul_1_into", "mul_basecase", "sqr",
                    "divrem", "divrem_1")

_saved = None


def install() -> None:
    """Rebind the fast routines into :mod:`repro.mp.mpn` (idempotent)."""
    global _saved
    if _saved is not None:
        return
    _saved = {name: getattr(mpn, name) for name in PATCHED_ROUTINES}
    for name in PATCHED_ROUTINES:
        setattr(mpn, name, globals()[name])


def uninstall() -> None:
    """Restore the reference routines (idempotent)."""
    global _saved
    if _saved is None:
        return
    for name, fn in _saved.items():
        setattr(mpn, name, fn)
    _saved = None


def installed() -> bool:
    return _saved is not None
