"""Leaf-routine tracing hook.

The performance macro-modeling methodology (paper Section 3.2) works by
"instantiating the performance macro-models for library routines in the
source code" so that a native run of an algorithm accumulates an
estimated cycle count instead of requiring instruction-set simulation.

This module provides the instrumentation point: every mpn leaf routine
calls :func:`trace` with its name and size parameters.  When no tracer
is installed the call is a cheap no-op; the macro-model estimator
(:mod:`repro.macromodel.estimator`) installs a tracer that looks up the
routine's fitted macro-model and charges the estimated cycles.

The installed tracer is **thread-local**: a worker thread estimating
one exploration candidate charges its own ledger, never a sibling's,
which is what makes :class:`repro.parallel.ThreadExecutor` sweeps
element-for-element identical to serial runs.
"""

import threading
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

#: Tracer signature: (routine_name, params_dict) -> None
Tracer = Callable[[str, dict], None]

_local = threading.local()


def set_tracer(tracer: Optional[Tracer]) -> None:
    """Install (or clear, with ``None``) this thread's leaf-routine
    tracer."""
    _local.tracer = tracer


def get_tracer() -> Optional[Tracer]:
    return getattr(_local, "tracer", None)


def trace(name: str, **params) -> None:
    """Report one invocation of leaf routine ``name`` to the tracer."""
    tracer = getattr(_local, "tracer", None)
    if tracer is not None:
        tracer(name, params)


@contextmanager
def traced(tracer: Tracer) -> Iterator[None]:
    """Context manager installing ``tracer`` for the duration of a block."""
    previous = getattr(_local, "tracer", None)
    set_tracer(tracer)
    try:
        yield
    finally:
        set_tracer(previous)
