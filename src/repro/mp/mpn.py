"""Low-level limb-vector primitives (the ``mpn`` layer).

These functions mirror the GNU GMP ``mpn`` interface that the paper's
software library is built on.  A limb vector is a plain Python list of
ints, least-significant limb first, each in ``[0, radix.base)``.

Every *leaf* routine (the ones the methodology characterizes and
accelerates with custom instructions) reports its invocation through
:func:`repro.mp.hooks.trace` with the size parameters that its
performance macro-model is a function of -- e.g. ``add_n`` reports the
limb count ``n``, exactly like the paper's ``mpn_add_n`` example whose
cycle count is modeled as a function of input bit-widths.

Unlike GMP, results are returned (functional style) rather than written
through pointers; carries/borrows are returned alongside.
"""

from typing import List, Tuple

from repro.mp.hooks import trace
from repro.mp.limb import DEFAULT_RADIX, Radix

Limbs = List[int]

#: Operand size (in limbs) above which multiplication switches from the
#: schoolbook base case to Karatsuba.  Exposed for the ablation bench.
KARATSUBA_THRESHOLD = 16


def normalize(up: Limbs) -> Limbs:
    """Strip high zero limbs (keep at least one limb)."""
    n = len(up)
    while n > 1 and up[n - 1] == 0:
        n -= 1
    return up[:n]


def from_int(value: int, radix: Radix = DEFAULT_RADIX) -> Limbs:
    """Convert a non-negative Python int to a normalized limb vector."""
    if value < 0:
        raise ValueError("mpn vectors are non-negative")
    if value == 0:
        return [0]
    limbs = []
    mask, bits = radix.mask, radix.bits
    while value:
        limbs.append(value & mask)
        value >>= bits
    return limbs


def to_int(up: Limbs, radix: Radix = DEFAULT_RADIX) -> int:
    """Convert a limb vector back to a Python int."""
    value = 0
    for limb in reversed(up):
        value = (value << radix.bits) | limb
    return value


def numbits(up: Limbs, radix: Radix = DEFAULT_RADIX) -> int:
    """Bit length of the value held in ``up`` (0 has bit length 0)."""
    up = normalize(up)
    top = up[-1]
    if top == 0:
        return 0
    return (len(up) - 1) * radix.bits + top.bit_length()


def cmp(up: Limbs, vp: Limbs, radix: Radix = DEFAULT_RADIX) -> int:
    """Three-way compare of two limb vectors (any lengths)."""
    un, vn = normalize(up), normalize(vp)
    if len(un) != len(vn):
        return -1 if len(un) < len(vn) else 1
    for u, v in zip(reversed(un), reversed(vn)):
        if u != v:
            return -1 if u < v else 1
    return 0


# ---------------------------------------------------------------------------
# Leaf routines (characterized / macro-modeled / accelerated)
# ---------------------------------------------------------------------------

def add_n(up: Limbs, vp: Limbs, radix: Radix = DEFAULT_RADIX) -> Tuple[Limbs, int]:
    """Add two equal-length limb vectors; return (sum limbs, carry out).

    This is the paper's running example: its cycle count on the base
    processor is linear in ``n`` and it is accelerated by ``add_2`` /
    ``add_4`` / ``add_8`` / ``add_16`` custom instructions.
    """
    if len(up) != len(vp):
        raise ValueError("add_n requires equal-length operands")
    trace("mpn_add_n", n=len(up))
    base = radix.base
    rp = []
    carry = 0
    for u, v in zip(up, vp):
        s = u + v + carry
        carry = 1 if s >= base else 0
        rp.append(s - base if carry else s)
    return rp, carry


def sub_n(up: Limbs, vp: Limbs, radix: Radix = DEFAULT_RADIX) -> Tuple[Limbs, int]:
    """Subtract ``vp`` from ``up`` (equal lengths); return (diff, borrow)."""
    if len(up) != len(vp):
        raise ValueError("sub_n requires equal-length operands")
    trace("mpn_sub_n", n=len(up))
    base = radix.base
    rp = []
    borrow = 0
    for u, v in zip(up, vp):
        d = u - v - borrow
        borrow = 1 if d < 0 else 0
        rp.append(d + base if borrow else d)
    return rp, borrow


def mul_1(up: Limbs, v: int, radix: Radix = DEFAULT_RADIX) -> Tuple[Limbs, int]:
    """Multiply a limb vector by a single limb; return (product, carry limb)."""
    trace("mpn_mul_1", n=len(up))
    bits, mask = radix.bits, radix.mask
    rp = []
    carry = 0
    for u in up:
        t = u * v + carry
        rp.append(t & mask)
        carry = t >> bits
    return rp, carry


def addmul_1(rp: Limbs, up: Limbs, v: int,
             radix: Radix = DEFAULT_RADIX) -> Tuple[Limbs, int]:
    """rp += up * v (equal lengths); return (new rp, carry limb).

    The multiply-accumulate inner loop of schoolbook multiplication --
    the hottest leaf routine in public-key processing and the
    ``mpn_addmul_1`` of paper Figure 5(b).
    """
    if len(rp) != len(up):
        raise ValueError("addmul_1 requires equal-length operands")
    trace("mpn_addmul_1", n=len(up))
    bits, mask = radix.bits, radix.mask
    out = []
    carry = 0
    for r, u in zip(rp, up):
        t = r + u * v + carry
        out.append(t & mask)
        carry = t >> bits
    return out, carry


def submul_1(rp: Limbs, up: Limbs, v: int,
             radix: Radix = DEFAULT_RADIX) -> Tuple[Limbs, int]:
    """rp -= up * v (equal lengths); return (new rp, borrow limb)."""
    if len(rp) != len(up):
        raise ValueError("submul_1 requires equal-length operands")
    trace("mpn_submul_1", n=len(up))
    bits, mask = radix.bits, radix.mask
    out = []
    borrow = 0
    for r, u in zip(rp, up):
        # Fold the incoming borrow into the product so it stays < base**2,
        # keeping each output limb strictly within [0, base).
        prod = u * v + borrow
        t = r - (prod & mask)
        borrow = prod >> bits
        if t < 0:
            t += radix.base
            borrow += 1
        out.append(t)
    return out, borrow


def lshift(up: Limbs, count: int, radix: Radix = DEFAULT_RADIX) -> Tuple[Limbs, int]:
    """Shift left by ``count`` bits (0 < count < limb bits); return (limbs, out)."""
    if not 0 < count < radix.bits:
        raise ValueError("lshift count must be in (0, limb bits)")
    trace("mpn_lshift", n=len(up))
    bits, mask = radix.bits, radix.mask
    rp = []
    carry = 0
    for u in up:
        t = (u << count) | carry
        rp.append(t & mask)
        carry = t >> bits
    return rp, carry


def rshift(up: Limbs, count: int, radix: Radix = DEFAULT_RADIX) -> Tuple[Limbs, int]:
    """Shift right by ``count`` bits; return (limbs, bits shifted out)."""
    if not 0 < count < radix.bits:
        raise ValueError("rshift count must be in (0, limb bits)")
    trace("mpn_rshift", n=len(up))
    bits = radix.bits
    rp = [0] * len(up)
    carry = 0
    for i in range(len(up) - 1, -1, -1):
        u = up[i]
        rp[i] = (u >> count) | (carry << (bits - count))
        carry = u & ((1 << count) - 1)
    return rp, carry


# ---------------------------------------------------------------------------
# In-place leaf variants (hot-path helpers)
# ---------------------------------------------------------------------------
# The composite routines below (schoolbook multiply, Knuth division) call
# the multiply-accumulate leaves once per outer-loop digit on a sliding
# window of the result vector.  Slicing that window in and out of a list
# every iteration dominates Python-side cost, so these variants update
# ``rp[offset:offset+len(up)]`` in place.  They trace exactly like their
# functional counterparts -- same routine name, same ``n`` -- so charged
# cycle counts are unchanged.

def _addmul_1_into(rp: Limbs, offset: int, up: Limbs, v: int,
                   radix: Radix = DEFAULT_RADIX) -> int:
    """rp[offset:offset+len(up)] += up * v in place; return carry limb."""
    trace("mpn_addmul_1", n=len(up))
    bits, mask = radix.bits, radix.mask
    carry = 0
    i = offset
    for u in up:
        t = rp[i] + u * v + carry
        rp[i] = t & mask
        carry = t >> bits
        i += 1
    return carry


def _submul_1_into(rp: Limbs, offset: int, up: Limbs, v: int,
                   radix: Radix = DEFAULT_RADIX) -> int:
    """rp[offset:offset+len(up)] -= up * v in place; return borrow limb."""
    trace("mpn_submul_1", n=len(up))
    bits, mask, base = radix.bits, radix.mask, radix.base
    borrow = 0
    i = offset
    for u in up:
        prod = u * v + borrow
        t = rp[i] - (prod & mask)
        borrow = prod >> bits
        if t < 0:
            t += base
            borrow += 1
        rp[i] = t
        i += 1
    return borrow


def _add_n_into(rp: Limbs, offset: int, up: Limbs,
                radix: Radix = DEFAULT_RADIX) -> int:
    """rp[offset:offset+len(up)] += up in place; return carry out."""
    trace("mpn_add_n", n=len(up))
    base = radix.base
    carry = 0
    i = offset
    for u in up:
        s = rp[i] + u + carry
        carry = 1 if s >= base else 0
        rp[i] = s - base if carry else s
        i += 1
    return carry


# ---------------------------------------------------------------------------
# Composite routines (built from the leaves)
# ---------------------------------------------------------------------------

def add(up: Limbs, vp: Limbs, radix: Radix = DEFAULT_RADIX) -> Limbs:
    """Add two vectors of any lengths; result includes any final carry."""
    if len(up) < len(vp):
        up, vp = vp, up
    lo, carry = add_n(up[: len(vp)], vp, radix)
    hi = list(up[len(vp):])
    i = 0
    while carry and i < len(hi):
        t = hi[i] + carry
        carry = 1 if t >= radix.base else 0
        hi[i] = t - radix.base if carry else t
        i += 1
    rp = lo + hi
    if carry:
        rp.append(1)
    return rp


def sub(up: Limbs, vp: Limbs, radix: Radix = DEFAULT_RADIX) -> Limbs:
    """Subtract ``vp`` from ``up``; requires up >= vp."""
    if cmp(up, vp, radix) < 0:
        raise ValueError("mpn.sub requires up >= vp")
    vp_ext = list(vp) + [0] * (len(up) - len(vp))
    rp, borrow = sub_n(up, vp_ext, radix)
    assert borrow == 0
    return normalize(rp)


def mul_basecase(up: Limbs, vp: Limbs, radix: Radix = DEFAULT_RADIX) -> Limbs:
    """Schoolbook product of two vectors (length = len(up)+len(vp))."""
    un = len(up)
    rp = [0] * (un + len(vp))
    lo, carry = mul_1(up, vp[0], radix)
    rp[:un] = lo
    rp[un] = carry
    for i in range(1, len(vp)):
        rp[i + un] += _addmul_1_into(rp, i, up, vp[i], radix)
    return rp


def _split(up: Limbs, k: int) -> Tuple[Limbs, Limbs]:
    lo = up[:k] or [0]
    hi = up[k:] or [0]
    return lo, hi


def mul_karatsuba(up: Limbs, vp: Limbs, radix: Radix = DEFAULT_RADIX,
                  threshold: int = None) -> Limbs:
    """Karatsuba product, recursing to the schoolbook base case."""
    if threshold is None:
        threshold = KARATSUBA_THRESHOLD
    un, vn = len(up), len(vp)
    if min(un, vn) < threshold:
        return mul_basecase(up, vp, radix)
    k = max(un, vn) // 2
    u0, u1 = _split(up, k)
    v0, v1 = _split(vp, k)
    z0 = mul_karatsuba(u0, v0, radix, threshold)
    z2 = mul_karatsuba(u1, v1, radix, threshold)
    usum = add(u0, u1, radix)
    vsum = add(v0, v1, radix)
    z1 = mul_karatsuba(usum, vsum, radix, threshold)
    z1 = sub(z1, add(normalize(z0), normalize(z2), radix), radix)
    # result = z0 + z1 << (k limbs) + z2 << (2k limbs)
    rp = list(z0)
    mid = [0] * k + z1
    hi = [0] * (2 * k) + z2
    rp = add(rp, mid, radix)
    rp = add(rp, hi, radix)
    return rp


def mul(up: Limbs, vp: Limbs, radix: Radix = DEFAULT_RADIX) -> Limbs:
    """General product; picks base case or Karatsuba by operand size."""
    up, vp = normalize(up), normalize(vp)
    if up == [0] or vp == [0]:
        return [0]
    if min(len(up), len(vp)) < KARATSUBA_THRESHOLD:
        return normalize(mul_basecase(up, vp, radix))
    return normalize(mul_karatsuba(up, vp, radix))


def sqr(up: Limbs, radix: Radix = DEFAULT_RADIX) -> Limbs:
    """Square of a vector (currently via mul; a true sqr saves ~half)."""
    return mul(up, up, radix)


def divrem_1(up: Limbs, v: int, radix: Radix = DEFAULT_RADIX) -> Tuple[Limbs, int]:
    """Divide a vector by a single limb; return (quotient, remainder limb)."""
    if v == 0:
        raise ZeroDivisionError("division by zero limb")
    trace("mpn_divrem_1", n=len(up))
    bits = radix.bits
    qp = [0] * len(up)
    rem = 0
    for i in range(len(up) - 1, -1, -1):
        cur = (rem << bits) | up[i]
        qp[i] = cur // v
        rem = cur - qp[i] * v
    return normalize(qp), rem


def divrem(up: Limbs, vp: Limbs, radix: Radix = DEFAULT_RADIX) -> Tuple[Limbs, Limbs]:
    """Knuth Algorithm D division; return (quotient, remainder) vectors."""
    up, vp = normalize(up), normalize(vp)
    if vp == [0]:
        raise ZeroDivisionError("mpn division by zero")
    if len(vp) == 1:
        q, r = divrem_1(up, vp[0], radix)
        return q, [r]
    if cmp(up, vp, radix) < 0:
        return [0], up
    bits, base, mask = radix.bits, radix.base, radix.mask

    # D1: normalize so the divisor's top limb has its high bit set.
    shift = bits - vp[-1].bit_length()
    if shift:
        vn, _ = lshift(vp, shift, radix)
        un, carry = lshift(up, shift, radix)
        un = un + [carry]
    else:
        vn = list(vp)
        un = list(up) + [0]
    n = len(vn)
    m = len(un) - n - 1
    qp = [0] * (m + 1)
    vtop, vnext = vn[-1], vn[-2]

    for j in range(m, -1, -1):
        # D3: estimate quotient digit from the top two/three limbs.
        # (On the target this is a division-free shift-subtract estimate;
        # see the divrem_qest kernel.)
        trace("mpn_divrem_qest", n=1)
        num = (un[j + n] << bits) | un[j + n - 1]
        qhat = num // vtop
        rhat = num - qhat * vtop
        while qhat >= base or qhat * vnext > ((rhat << bits) | un[j + n - 2]):
            qhat -= 1
            rhat += vtop
            if rhat >= base:
                break
        # D4: multiply and subtract (in place on the un window).
        borrow = _submul_1_into(un, j, vn, qhat, radix)
        top = un[j + n] - borrow
        if top < 0:
            # D6: qhat was one too large; add back.
            qhat -= 1
            top += _add_n_into(un, j, vn, radix)
            top += base if top < 0 else 0
        un[j + n] = top & mask
        qp[j] = qhat

    rem = normalize(un[:n])
    if shift:
        rem, _ = rshift(rem, shift, radix)
    return normalize(qp), normalize(rem)


def mod(up: Limbs, vp: Limbs, radix: Radix = DEFAULT_RADIX) -> Limbs:
    """Remainder of up / vp."""
    _, r = divrem(up, vp, radix)
    return r
