"""Deterministic pseudo-random number generation.

Every experiment in the repository (characterization stimuli, key
generation, workload synthesis) draws randomness from this generator so
runs are exactly reproducible.  The core is a 64-bit xorshift* stream,
which is plenty for *stimulus* generation -- it is NOT a cryptographic
RNG and the crypto layer documents that substitution.
"""

import zlib
from typing import List

from repro.mp.limb import DEFAULT_RADIX, Radix

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


class DeterministicPrng:
    """xorshift64* PRNG with convenience draws for the test harnesses."""

    def __init__(self, seed: int = _GOLDEN):
        if seed == 0:
            seed = _GOLDEN
        self._seed = seed & _MASK64
        self._state = self._seed

    @property
    def initial_seed(self) -> int:
        """The seed this stream started from (what :meth:`fork` keys on)."""
        return self._seed

    def fork(self, label) -> "DeterministicPrng":
        """An independent stream derived from the *initial* seed and a
        label.

        Forking ignores how much of this stream has been consumed, so a
        forked stream's values depend only on ``(initial seed, label)``
        -- never on draw order or on which parallel job forked first.
        That is the property that lets per-routine characterization
        jobs run in any order and still produce identical stimuli.
        """
        mixed = (self._seed ^ (zlib.crc32(str(label).encode("utf-8"))
                               * _GOLDEN)) & _MASK64
        # One scramble round so labels differing in few bits diverge.
        mixed ^= (mixed >> 30)
        mixed = (mixed * 0xBF58476D1CE4E5B9) & _MASK64
        return DeterministicPrng(mixed or _GOLDEN)

    def next_u64(self) -> int:
        x = self._state
        x ^= (x >> 12)
        x ^= (x << 25) & _MASK64
        x ^= (x >> 27)
        self._state = x
        return (x * 0x2545F4914F6CDD1D) & _MASK64

    def next_bits(self, nbits: int) -> int:
        """Uniform integer in [0, 2**nbits)."""
        value = 0
        got = 0
        while got < nbits:
            value = (value << 64) | self.next_u64()
            got += 64
        return value >> (got - nbits)

    def next_int(self, upper: int) -> int:
        """Uniform integer in [0, upper)."""
        if upper <= 0:
            raise ValueError("upper must be positive")
        nbits = upper.bit_length()
        while True:
            candidate = self.next_bits(nbits)
            if candidate < upper:
                return candidate

    def next_range(self, low: int, high: int) -> int:
        """Uniform integer in [low, high]."""
        return low + self.next_int(high - low + 1)

    def next_odd_bits(self, nbits: int) -> int:
        """Uniform odd integer with exactly ``nbits`` bits (top bit set)."""
        if nbits < 2:
            raise ValueError("need at least 2 bits")
        value = self.next_bits(nbits)
        value |= (1 << (nbits - 1)) | 1
        return value

    def next_bytes(self, n: int) -> bytes:
        return bytes(self.next_bits(8) for _ in range(n))

    def next_limbs(self, n: int, radix: Radix = DEFAULT_RADIX) -> List[int]:
        """A vector of ``n`` uniform limbs."""
        return [self.next_bits(radix.bits) for _ in range(n)]

    def choice(self, seq):
        return seq[self.next_int(len(seq))]

    def shuffle(self, seq: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(seq) - 1, 0, -1):
            j = self.next_int(i + 1)
            seq[i], seq[j] = seq[j], seq[i]
