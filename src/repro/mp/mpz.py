"""Sign-magnitude arbitrary-precision integers (the ``mpz`` layer).

:class:`Mpz` wraps the :mod:`repro.mp.mpn` limb-vector primitives with
Python's numeric protocol so the higher software layers (complex
operations, security primitives) read naturally while every underlying
limb operation still flows through the characterized leaf routines.

Division follows Python's floor-division convention so Mpz arithmetic
can be validated directly against Python ints.
"""

from typing import Tuple, Union

from repro.mp import mpn
from repro.mp.limb import DEFAULT_RADIX, Radix

IntLike = Union[int, "Mpz"]


class Mpz:
    """An arbitrary-precision signed integer over limb vectors."""

    __slots__ = ("limbs", "sign", "radix")

    def __init__(self, value: IntLike = 0, radix: Radix = DEFAULT_RADIX):
        if isinstance(value, Mpz):
            self.limbs = list(value.limbs)
            self.sign = value.sign
            self.radix = radix
            if radix is not value.radix:
                self.limbs = mpn.from_int(abs(int(value)), radix)
            return
        self.radix = radix
        self.sign = (value > 0) - (value < 0)
        self.limbs = mpn.from_int(abs(value), radix)

    # -- construction helpers ------------------------------------------------

    @classmethod
    def _raw(cls, limbs, sign, radix) -> "Mpz":
        obj = cls.__new__(cls)
        obj.limbs = mpn.normalize(limbs)
        obj.sign = 0 if obj.limbs == [0] else sign
        obj.radix = radix
        return obj

    @classmethod
    def from_bytes(cls, data: bytes, radix: Radix = DEFAULT_RADIX) -> "Mpz":
        """Big-endian unsigned bytes -> Mpz."""
        return cls(int.from_bytes(data, "big"), radix)

    def to_bytes(self, length: int) -> bytes:
        """Mpz -> big-endian unsigned bytes of the given length."""
        if self.sign < 0:
            raise ValueError("cannot serialize a negative Mpz")
        return int(self).to_bytes(length, "big")

    # -- conversions ---------------------------------------------------------

    def __int__(self) -> int:
        return self.sign * mpn.to_int(self.limbs, self.radix)

    def __index__(self) -> int:
        return int(self)

    def bit_length(self) -> int:
        return mpn.numbits(self.limbs, self.radix)

    def test_bit(self, i: int) -> int:
        """Value (0/1) of magnitude bit ``i``."""
        limb, off = divmod(i, self.radix.bits)
        if limb >= len(self.limbs):
            return 0
        return (self.limbs[limb] >> off) & 1

    def is_zero(self) -> bool:
        return self.sign == 0

    def is_odd(self) -> bool:
        return bool(self.limbs[0] & 1)

    def is_even(self) -> bool:
        return not self.is_odd()

    # -- comparisons ---------------------------------------------------------

    def _coerce(self, other: IntLike) -> "Mpz":
        if isinstance(other, Mpz):
            if other.radix is not self.radix:
                return Mpz(int(other), self.radix)
            return other
        if isinstance(other, int):
            return Mpz(other, self.radix)
        return NotImplemented  # type: ignore[return-value]

    def _cmp(self, other: "Mpz") -> int:
        if self.sign != other.sign:
            return -1 if self.sign < other.sign else 1
        mag = mpn.cmp(self.limbs, other.limbs, self.radix)
        return mag if self.sign >= 0 else -mag

    def __eq__(self, other) -> bool:
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self._cmp(other) == 0

    def __lt__(self, other) -> bool:
        return self._cmp(self._coerce(other)) < 0

    def __le__(self, other) -> bool:
        return self._cmp(self._coerce(other)) <= 0

    def __gt__(self, other) -> bool:
        return self._cmp(self._coerce(other)) > 0

    def __ge__(self, other) -> bool:
        return self._cmp(self._coerce(other)) >= 0

    def __hash__(self) -> int:
        return hash(int(self))

    def __bool__(self) -> bool:
        return self.sign != 0

    # -- arithmetic ----------------------------------------------------------

    def __neg__(self) -> "Mpz":
        return Mpz._raw(list(self.limbs), -self.sign, self.radix)

    def __abs__(self) -> "Mpz":
        return Mpz._raw(list(self.limbs), abs(self.sign), self.radix)

    def __add__(self, other: IntLike) -> "Mpz":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        if self.sign == 0:
            return Mpz._raw(list(other.limbs), other.sign, self.radix)
        if other.sign == 0:
            return Mpz._raw(list(self.limbs), self.sign, self.radix)
        if self.sign == other.sign:
            return Mpz._raw(mpn.add(self.limbs, other.limbs, self.radix),
                            self.sign, self.radix)
        # Opposite signs: subtract the smaller magnitude from the larger.
        c = mpn.cmp(self.limbs, other.limbs, self.radix)
        if c == 0:
            return Mpz(0, self.radix)
        if c > 0:
            return Mpz._raw(mpn.sub(self.limbs, other.limbs, self.radix),
                            self.sign, self.radix)
        return Mpz._raw(mpn.sub(other.limbs, self.limbs, self.radix),
                        other.sign, self.radix)

    __radd__ = __add__

    def __sub__(self, other: IntLike) -> "Mpz":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self + (-other)

    def __rsub__(self, other: IntLike) -> "Mpz":
        return self._coerce(other) - self

    def __mul__(self, other: IntLike) -> "Mpz":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        if self.sign == 0 or other.sign == 0:
            return Mpz(0, self.radix)
        return Mpz._raw(mpn.mul(self.limbs, other.limbs, self.radix),
                        self.sign * other.sign, self.radix)

    __rmul__ = __mul__

    def __divmod__(self, other: IntLike) -> Tuple["Mpz", "Mpz"]:
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        if other.sign == 0:
            raise ZeroDivisionError("Mpz division by zero")
        q_mag, r_mag = mpn.divrem(self.limbs, other.limbs, self.radix)
        q = Mpz._raw(q_mag, self.sign * other.sign, self.radix)
        r = Mpz._raw(r_mag, self.sign, self.radix)
        # Adjust truncation toward floor division (Python semantics).
        if r.sign != 0 and (r.sign != other.sign):
            q = q - Mpz(1, self.radix)
            r = r + other
        return q, r

    def __rdivmod__(self, other: IntLike):
        return divmod(self._coerce(other), self)

    def __floordiv__(self, other: IntLike) -> "Mpz":
        return divmod(self, other)[0]

    def __rfloordiv__(self, other: IntLike) -> "Mpz":
        return self._coerce(other) // self

    def __mod__(self, other: IntLike) -> "Mpz":
        return divmod(self, other)[1]

    def __rmod__(self, other: IntLike) -> "Mpz":
        return self._coerce(other) % self

    def __lshift__(self, count: int) -> "Mpz":
        if count < 0:
            raise ValueError("negative shift count")
        if count == 0 or self.sign == 0:
            return Mpz._raw(list(self.limbs), self.sign, self.radix)
        whole, frac = divmod(count, self.radix.bits)
        limbs = [0] * whole + list(self.limbs)
        if frac:
            limbs, carry = mpn.lshift(limbs, frac, self.radix)
            if carry:
                limbs.append(carry)
        return Mpz._raw(limbs, self.sign, self.radix)

    def __rshift__(self, count: int) -> "Mpz":
        if count < 0:
            raise ValueError("negative shift count")
        if self.sign < 0:
            # Arithmetic shift for negatives via Python semantics.
            return Mpz(int(self) >> count, self.radix)
        if count == 0 or self.sign == 0:
            return Mpz._raw(list(self.limbs), self.sign, self.radix)
        whole, frac = divmod(count, self.radix.bits)
        limbs = list(self.limbs[whole:]) or [0]
        if frac and limbs != [0]:
            limbs, _ = mpn.rshift(limbs, frac, self.radix)
        return Mpz._raw(limbs, self.sign, self.radix)

    def __pow__(self, exponent, modulus=None) -> "Mpz":
        if modulus is not None:
            return self.pow_mod(exponent, modulus)
        exponent = int(exponent)
        if exponent < 0:
            raise ValueError("negative exponent without modulus")
        result = Mpz(1, self.radix)
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            exponent >>= 1
            if exponent:
                base = base * base
        return result

    def pow_mod(self, exponent: IntLike, modulus: IntLike) -> "Mpz":
        """Left-to-right binary modular exponentiation.

        The *tuned* exponentiation algorithms live in
        :mod:`repro.crypto.modexp`; this is the plain reference used by
        the complex-operations layer (e.g. Miller-Rabin).
        """
        exponent = self._coerce(exponent)
        modulus = self._coerce(modulus)
        if modulus.sign <= 0:
            raise ValueError("modulus must be positive")
        if exponent.sign < 0:
            inv = self.invert(modulus)
            return inv.pow_mod(-exponent, modulus)
        result = Mpz(1, self.radix)
        base = self % modulus
        for i in range(exponent.bit_length() - 1, -1, -1):
            result = (result * result) % modulus
            if exponent.test_bit(i):
                result = (result * base) % modulus
        return result % modulus

    # -- number theory -------------------------------------------------------

    def gcdext(self, other: IntLike) -> Tuple["Mpz", "Mpz", "Mpz"]:
        """Extended Euclid: returns (g, s, t) with s*self + t*other = g >= 0."""
        other = self._coerce(other)
        zero, one = Mpz(0, self.radix), Mpz(1, self.radix)
        old_r, r = self, other
        old_s, s = one, zero
        old_t, t = zero, one
        while r.sign != 0:
            q, rem = divmod(old_r, r)
            old_r, r = r, rem
            old_s, s = s, old_s - q * s
            old_t, t = t, old_t - q * t
        if old_r.sign < 0:
            old_r, old_s, old_t = -old_r, -old_s, -old_t
        return old_r, old_s, old_t

    def gcd(self, other: IntLike) -> "Mpz":
        g, _, _ = self.gcdext(other)
        return g

    def invert(self, modulus: IntLike) -> "Mpz":
        """Modular inverse of self mod modulus; raises if it does not exist."""
        modulus = self._coerce(modulus)
        g, s, _ = self.gcdext(modulus)
        if g != 1:
            raise ValueError("inverse does not exist (operands not coprime)")
        return s % modulus

    # -- display -------------------------------------------------------------

    def __repr__(self) -> str:
        return f"Mpz({int(self)})"

    def __str__(self) -> str:
        return str(int(self))
