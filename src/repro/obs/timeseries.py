"""Virtual-time metrics time series: sampled registry snapshots.

Every metric in :mod:`repro.obs` is a point-in-time aggregate; this
module adds the *over-time* view the soak and chaos studies need.  A
:class:`TimeSeriesSampler` snapshots a :class:`~repro.obs.metrics
.MetricsRegistry` at fixed virtual-time intervals (every N cycles of
simulation -- never wall clock), flattening each instrument into
scalar values: counters and gauges verbatim, histograms expanded into
``:count`` / ``:sum`` / ``:mean`` / ``:pXX`` derived keys.  Samples
land in a :class:`MetricsTimeSeries` -- a bounded ring buffer with
point-event annotations (fault injections, SLO alerts, scale actions)
and the windowed query helpers a scrape-side PromQL user would reach
for (:meth:`~MetricsTimeSeries.rate`, :meth:`~MetricsTimeSeries
.delta`, :meth:`~MetricsTimeSeries.max_over_time`,
:meth:`~MetricsTimeSeries.quantile_over_time`).

Serialization follows the trace/workload convention: one JSONL header
line, then one sorted-keys JSON record per sample and per event, so a
series exports byte-identically on every run and
``write -> read -> write`` round-trips exactly.

Like everything in :mod:`repro.obs`, this module depends on nothing
outside the package, so any layer may feed or consume a series
without import cycles.
"""

import json
import math
from collections import deque
from dataclasses import dataclass, field
from typing import (Callable, Deque, Dict, Iterable, List, Optional,
                    Sequence, TextIO, Tuple, Union)

from repro.obs.metrics import MetricsRegistry

__all__ = ["DEFAULT_QUANTILES", "DEFAULT_SERIES_CAPACITY",
           "MetricsTimeSeries", "SERIES_FORMAT", "SERIES_VERSION",
           "SeriesEvent", "SeriesSample", "TimeSeriesSampler",
           "read_series_jsonl", "render_series", "snapshot_registry",
           "sparkline", "write_series_jsonl"]

SERIES_FORMAT = "repro.obs.timeseries"
SERIES_VERSION = 1

#: Histogram quantiles expanded into per-sample derived keys.
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)

#: Ring capacity: at the farm default of one sample per 50 virtual
#: milliseconds this holds over three virtual minutes of history.
DEFAULT_SERIES_CAPACITY = 4096

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


@dataclass(frozen=True)
class SeriesSample:
    """One registry snapshot at a virtual instant (cycles)."""

    t_cycles: float
    values: Dict[str, float]

    def as_dict(self) -> Dict:
        return {"kind": "sample", "t_cycles": self.t_cycles,
                "values": dict(self.values)}


@dataclass(frozen=True)
class SeriesEvent:
    """A point annotation on the series (fault, alert, scale action)."""

    t_cycles: float
    name: str
    attrs: Dict = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return {"kind": "event", "t_cycles": self.t_cycles,
                "name": self.name, "attrs": dict(self.attrs)}


def snapshot_registry(registry: MetricsRegistry,
                      quantiles: Sequence[float] = DEFAULT_QUANTILES
                      ) -> Dict[str, float]:
    """Flatten a registry into scalar values for one series sample.

    Keys follow :meth:`MetricsRegistry.as_dict`'s ``name{k=v,...}``
    convention; histogram instruments expand into ``key:count`` /
    ``key:sum`` / ``key:mean`` and one ``key:pXX`` per requested
    quantile (the registry's deterministic bucket-edge estimate).
    """
    values: Dict[str, float] = {}
    for name, labels, instrument in registry.items():
        if labels:
            rendered = ",".join(f"{k}={v}" for k, v in labels)
            key = f"{name}{{{rendered}}}"
        else:
            key = name
        payload = instrument.as_dict()
        if payload["type"] == "histogram":
            count = payload["count"]
            values[f"{key}:count"] = float(count)
            values[f"{key}:sum"] = payload["sum"]
            values[f"{key}:mean"] = (payload["sum"] / count
                                     if count else 0.0)
            for q in quantiles:
                values[f"{key}:p{_quantile_label(q)}"] = \
                    instrument.quantile(q)
        else:
            values[key] = payload["value"]
    return values


def _quantile_label(q: float) -> str:
    """``0.5 -> "50"``, ``0.99 -> "99"``, ``0.999 -> "99.9"``."""
    pct = q * 100.0
    return f"{pct:g}"


class MetricsTimeSeries:
    """A bounded ring of samples plus point-event annotations.

    ``interval_cycles`` documents the sampler's cadence (queries do
    not require it -- samples carry their own timestamps), and
    ``capacity`` bounds memory: appending beyond it evicts the oldest
    sample and bumps :attr:`dropped`, the honest record that history
    was truncated.
    """

    def __init__(self, clock_hz: float, interval_cycles: float,
                 capacity: int = DEFAULT_SERIES_CAPACITY):
        if clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        if interval_cycles <= 0:
            raise ValueError("interval_cycles must be positive")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.clock_hz = clock_hz
        self.interval_cycles = interval_cycles
        self.capacity = capacity
        self.samples: Deque[SeriesSample] = deque(maxlen=capacity)
        self.events: List[SeriesEvent] = []
        #: Samples evicted by the ring bound (0 in a sized run).
        self.dropped = 0

    # -- building --------------------------------------------------------

    def append(self, t_cycles: float, values: Dict[str, float]) -> None:
        """Add one sample (evicting the oldest at capacity)."""
        if len(self.samples) == self.capacity:
            self.dropped += 1
        self.samples.append(SeriesSample(t_cycles=float(t_cycles),
                                         values=dict(values)))

    def annotate(self, t_cycles: float, name: str, **attrs) -> None:
        """Pin a named point event onto the series."""
        self.events.append(SeriesEvent(t_cycles=float(t_cycles),
                                       name=name, attrs=dict(attrs)))

    def merge(self, other: "MetricsTimeSeries",
              offset_cycles: float = 0.0) -> None:
        """Append another series' samples and events, order-preserved,
        with timestamps rebased by ``offset_cycles`` (how the soak
        loop stitches per-epoch series onto one timeline)."""
        for sample in other.samples:
            self.append(sample.t_cycles + offset_cycles, sample.values)
        for event in other.events:
            self.annotate(event.t_cycles + offset_cycles, event.name,
                          **event.attrs)
        self.dropped += other.dropped

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.samples)

    def keys(self) -> List[str]:
        """Every value key any retained sample carries, sorted."""
        seen = set()
        for sample in self.samples:
            seen.update(sample.values)
        return sorted(seen)

    def points(self, key: str,
               start_cycles: Optional[float] = None,
               end_cycles: Optional[float] = None
               ) -> List[Tuple[float, float]]:
        """``(t_cycles, value)`` pairs of ``key`` inside the window
        (inclusive bounds; ``None`` means unbounded)."""
        out = []
        for sample in self.samples:
            if start_cycles is not None and sample.t_cycles < start_cycles:
                continue
            if end_cycles is not None and sample.t_cycles > end_cycles:
                continue
            if key in sample.values:
                out.append((sample.t_cycles, sample.values[key]))
        return out

    def events_between(self, start_cycles: Optional[float] = None,
                       end_cycles: Optional[float] = None
                       ) -> List[SeriesEvent]:
        return [event for event in self.events
                if (start_cycles is None or event.t_cycles >= start_cycles)
                and (end_cycles is None or event.t_cycles <= end_cycles)]

    # -- windowed queries ------------------------------------------------

    def delta(self, key: str, start_cycles: Optional[float] = None,
              end_cycles: Optional[float] = None) -> float:
        """Last minus first value of ``key`` over the window (the
        increase of a cumulative counter; 0.0 with <2 points)."""
        pts = self.points(key, start_cycles, end_cycles)
        if len(pts) < 2:
            return 0.0
        return pts[-1][1] - pts[0][1]

    def rate(self, key: str, start_cycles: Optional[float] = None,
             end_cycles: Optional[float] = None) -> float:
        """Per-virtual-second increase of ``key`` over the window."""
        pts = self.points(key, start_cycles, end_cycles)
        if len(pts) < 2:
            return 0.0
        span = pts[-1][0] - pts[0][0]
        if span <= 0:
            return 0.0
        return (pts[-1][1] - pts[0][1]) / (span / self.clock_hz)

    def max_over_time(self, key: str,
                      start_cycles: Optional[float] = None,
                      end_cycles: Optional[float] = None) -> float:
        pts = self.points(key, start_cycles, end_cycles)
        return max((v for _, v in pts), default=0.0)

    def quantile_over_time(self, key: str, q: float,
                           start_cycles: Optional[float] = None,
                           end_cycles: Optional[float] = None) -> float:
        """Nearest-rank ``q``-quantile of the sampled values (the same
        deterministic convention as :func:`repro.farm.metrics
        .percentile`)."""
        if not 0 < q <= 1:
            raise ValueError("q must be in (0, 1]")
        values = sorted(v for _, v in self.points(key, start_cycles,
                                                  end_cycles))
        if not values:
            return 0.0
        rank = max(1, math.ceil(q * len(values)))
        return values[rank - 1]

    def as_dict(self) -> Dict:
        return {
            "clock_hz": self.clock_hz,
            "interval_cycles": self.interval_cycles,
            "capacity": self.capacity,
            "dropped": self.dropped,
            "samples": [s.as_dict() for s in self.samples],
            "events": [e.as_dict() for e in self.events],
        }


class TimeSeriesSampler:
    """Drives a series from a registry on a fixed virtual cadence.

    Feed it monotonically non-decreasing times: :meth:`advance`
    snapshots the registry at every interval boundary *strictly
    before* ``t_cycles`` (so state changes landing exactly on a
    boundary are included in that boundary's sample), and
    :meth:`finish` emits the remaining boundaries plus one final
    sample at the end time.  ``before_sample`` (if given) runs with
    the sample time right before each snapshot -- the hook derived
    per-interval gauges are computed in.
    """

    def __init__(self, registry: MetricsRegistry, clock_hz: float,
                 interval_cycles: float,
                 capacity: int = DEFAULT_SERIES_CAPACITY,
                 quantiles: Sequence[float] = DEFAULT_QUANTILES,
                 before_sample: Optional[Callable[[float], None]] = None):
        self.registry = registry
        self.quantiles = tuple(quantiles)
        self.before_sample = before_sample
        self.series = MetricsTimeSeries(clock_hz=clock_hz,
                                        interval_cycles=interval_cycles,
                                        capacity=capacity)
        self._boundary = interval_cycles

    def sample_at(self, t_cycles: float) -> None:
        """Snapshot the registry into one sample at ``t_cycles``."""
        if self.before_sample is not None:
            self.before_sample(t_cycles)
        self.series.append(t_cycles,
                           snapshot_registry(self.registry,
                                             self.quantiles))

    def advance(self, t_cycles: float) -> None:
        """Emit every pending interval boundary before ``t_cycles``."""
        interval = self.series.interval_cycles
        while self._boundary < t_cycles:
            self.sample_at(self._boundary)
            self._boundary += interval

    def finish(self, t_cycles: float) -> MetricsTimeSeries:
        """Drain boundaries and take the closing sample at the end
        time (exactly one sample lands at ``t_cycles``)."""
        self.advance(t_cycles)
        self.sample_at(t_cycles)
        return self.series


# -- JSONL round-trip --------------------------------------------------------

def write_series_jsonl(series: MetricsTimeSeries,
                       destination: Union[str, TextIO]) -> int:
    """Write a series as JSONL (header, samples, then events); returns
    the record count.  Sorted keys and repr-exact floats make repeated
    exports of the same run byte-identical."""
    header = {"format": SERIES_FORMAT, "version": SERIES_VERSION,
              "clock_hz": series.clock_hz,
              "interval_cycles": series.interval_cycles,
              "capacity": series.capacity, "dropped": series.dropped,
              "samples": len(series.samples),
              "events": len(series.events)}
    if hasattr(destination, "write"):
        fh, close = destination, False
    else:
        fh, close = open(destination, "w", encoding="utf-8"), True
    try:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for sample in series.samples:
            fh.write(json.dumps(sample.as_dict(), sort_keys=True) + "\n")
        for event in series.events:
            fh.write(json.dumps(event.as_dict(), sort_keys=True) + "\n")
    finally:
        if close:
            fh.close()
    return 1 + len(series.samples) + len(series.events)


def read_series_jsonl(source: Union[str, TextIO]) -> MetricsTimeSeries:
    """Rebuild a series from a JSONL export (the exact inverse of
    :func:`write_series_jsonl`: re-exporting the result reproduces the
    input byte for byte)."""
    if hasattr(source, "read"):
        lines = source.read().splitlines()
        name = "<stream>"
    else:
        name = str(source)
        with open(name, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    lines = [line for line in lines if line.strip()]
    if not lines:
        raise ValueError(f"{name}: empty time-series file")
    header = json.loads(lines[0])
    if header.get("format") != SERIES_FORMAT:
        raise ValueError(f"{name}: not a {SERIES_FORMAT} file")
    if header.get("version") != SERIES_VERSION:
        raise ValueError(f"{name}: unsupported series version "
                         f"{header.get('version')!r}")
    series = MetricsTimeSeries(
        clock_hz=float(header["clock_hz"]),
        interval_cycles=float(header["interval_cycles"]),
        capacity=int(header["capacity"]))
    expected = header.get("samples", 0) + header.get("events", 0)
    records = lines[1:]
    if len(records) != expected:
        raise ValueError(f"{name}: header promises {expected} records, "
                         f"found {len(records)} (truncated series?)")
    for line in records:
        payload = json.loads(line)
        kind = payload.get("kind")
        if kind == "sample":
            series.append(payload["t_cycles"], payload["values"])
        elif kind == "event":
            series.annotate(payload["t_cycles"], payload["name"],
                            **payload["attrs"])
        else:
            raise ValueError(f"{name}: unknown record kind {kind!r}")
    series.dropped = int(header.get("dropped", 0))
    return series


# -- rendering ---------------------------------------------------------------

def sparkline(values: Sequence[float], width: int = 64) -> str:
    """Unicode block sparkline of ``values`` (bucketed to ``width``
    columns, each showing its bucket's maximum -- spikes survive the
    downsample).  Deterministic: equal inputs render equal strings."""
    if width < 1:
        raise ValueError("width must be >= 1")
    if not values:
        return ""
    if len(values) > width:
        per = len(values) / width
        buckets = []
        for i in range(width):
            lo, hi = int(i * per), max(int(i * per) + 1,
                                       int((i + 1) * per))
            buckets.append(max(values[lo:hi]))
    else:
        buckets = list(values)
    low, high = min(buckets), max(buckets)
    span = high - low
    if span <= 0:
        return _SPARK_BLOCKS[3] * len(buckets)
    top = len(_SPARK_BLOCKS) - 1
    return "".join(
        _SPARK_BLOCKS[min(top, int((v - low) / span * top + 0.5))]
        for v in buckets)


def render_series(series: MetricsTimeSeries,
                  keys: Optional[Iterable[str]] = None,
                  width: int = 64) -> str:
    """Per-metric sparkline panel of a series, plus its annotations.

    One row per key: sparkline over the retained samples with the
    min/max/last values, followed by the point events in time order --
    the terminal rendition of the HTML dashboard.
    """
    chosen = list(keys) if keys is not None else series.keys()
    clock = series.clock_hz
    lines: List[str] = []
    span_s = (series.samples[-1].t_cycles / clock
              if series.samples else 0.0)
    lines.append(f"{len(series.samples)} samples over {span_s:.3f}s "
                 f"virtual, {len(series.events)} events"
                 + (f", {series.dropped} dropped" if series.dropped
                    else ""))
    for key in chosen:
        pts = series.points(key)
        if not pts:
            continue
        values = [v for _, v in pts]
        lines.append(f"  {key}")
        lines.append(f"    {sparkline(values, width)}  "
                     f"min={min(values):g} max={max(values):g} "
                     f"last={values[-1]:g}")
    if series.events:
        lines.append("events:")
        for event in sorted(series.events,
                            key=lambda e: (e.t_cycles, e.name)):
            attrs = ",".join(f"{k}={event.attrs[k]}"
                             for k in sorted(event.attrs))
            lines.append(f"  {event.t_cycles / clock:10.3f}s "
                         f"{event.name}" + (f" [{attrs}]" if attrs
                                            else ""))
    return "\n".join(lines)
