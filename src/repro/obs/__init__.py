"""Observability: metrics and structured tracing for every layer.

The paper's methodology is measurement all the way down -- the ISS
characterizes, macro-models estimate, the farm simulates -- yet until
this package the scale-out layers only reported end-of-run aggregates.
:mod:`repro.obs` is the substrate that lets every later performance PR
justify itself:

- :mod:`repro.obs.metrics` -- a deterministic metrics registry:
  :class:`Counter`, :class:`Gauge`, and :class:`Histogram` (fixed
  bucket edges, so two identical runs bucket identically), keyed by
  ``(name, labels)`` and serialized in sorted order;
- :mod:`repro.obs.trace`   -- span-based structured tracing: a
  :class:`Tracer` records :class:`Span` records (explicit virtual-time
  stamps from the farm's cycle clock, or a logical step clock
  elsewhere), and the process-global tracer is a shared
  :data:`NULL_TRACER` no-op when disabled so hot loops pay one
  identity check;
- :mod:`repro.obs.export`  -- JSON-lines event logs (write *and*
  read) and the text / JSON / Prometheus summaries the CLI's
  ``--trace-out``/``--metrics`` flags emit;
- :mod:`repro.obs.profile` -- the hierarchical cycle-attribution
  profiler: :class:`CycleProfile` merges any tracer's span tree by
  call path into exact self/cumulative cycle accounting, also
  buildable from annotated call graphs and raw ISS profiles, with
  top-N tables, JSON, and folded-stack (flamegraph) exports;
- :mod:`repro.obs.bench`   -- deterministic benchmark scenarios and
  the ``BENCH_<scenario>.json`` baseline / regression gate behind
  ``python -m repro bench [--check]``;
- :mod:`repro.obs.slo`     -- the shared service-level-objective
  vocabulary (:class:`SloObjective`, :class:`SloTarget`) and the
  runtime :class:`SloMonitor` that grades epoch windows and publishes
  ``farm.slo_*`` counters;
- :mod:`repro.obs.timeseries` -- virtual-time metrics series: a
  :class:`TimeSeriesSampler` snapshots a registry every N cycles into
  a bounded :class:`MetricsTimeSeries` ring (JSONL round-trip,
  windowed ``rate``/``delta``/``max_over_time``/``quantile_over_time``
  queries, sparkline rendering);
- :mod:`repro.obs.dashboard` -- self-contained HTML dashboards of an
  exported series (inline-SVG charts, event annotations, no external
  assets).

Instrumented layers: :mod:`repro.farm.simulator` (per-request spans,
queue-depth timelines, session-cache counters), :mod:`repro.costs`
(characterization-cache hit/miss/stale counters, per-routine fit-error
gauges), :mod:`repro.isa.machine` (opt-in instruction-mix profiles),
and the :mod:`repro.ssl` / :mod:`repro.protocols` entry points.

Everything here is dependency-free within the repo (stdlib only), so
any layer may import it without cycles.
"""

from repro.obs.metrics import (Counter, DEFAULT_LATENCY_MS_EDGES, Gauge,
                               Histogram, MetricsRegistry, get_registry,
                               reset_metrics, set_registry)
from repro.obs.trace import (NULL_TRACER, NullTracer, Span, Tracer,
                             configure_tracing, get_tracer,
                             reset_tracing, tracing_enabled)
from repro.obs.export import (metrics_summary, read_events_jsonl,
                              render_metrics, write_events_jsonl)
from repro.obs.profile import CycleProfile, ProfileNode
from repro.obs.slo import (SloMonitor, SloObjective, SloReport,
                           SloTarget, SloWindow, parse_slo)
from repro.obs.timeseries import (DEFAULT_SERIES_CAPACITY,
                                  MetricsTimeSeries, SeriesEvent,
                                  SeriesSample, TimeSeriesSampler,
                                  read_series_jsonl, render_series,
                                  snapshot_registry, sparkline,
                                  write_series_jsonl)
from repro.obs.dashboard import render_dashboard_html

__all__ = [
    "Counter", "CycleProfile", "DEFAULT_LATENCY_MS_EDGES",
    "DEFAULT_SERIES_CAPACITY", "Gauge", "Histogram", "MetricsRegistry",
    "MetricsTimeSeries", "NULL_TRACER", "NullTracer", "ProfileNode",
    "SeriesEvent", "SeriesSample", "SloMonitor", "SloObjective",
    "SloReport", "SloTarget", "SloWindow", "Span",
    "TimeSeriesSampler", "Tracer", "configure_tracing",
    "get_registry", "get_tracer", "metrics_summary", "parse_slo",
    "read_events_jsonl", "read_series_jsonl", "render_dashboard_html",
    "render_metrics", "render_series", "reset_metrics",
    "reset_tracing", "set_registry", "snapshot_registry", "sparkline",
    "tracing_enabled", "write_events_jsonl", "write_series_jsonl",
]
