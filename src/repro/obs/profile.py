"""Hierarchical cycle-attribution profiling over span trees.

The paper's methodology is cycle *attribution*: the ISS attributes
cycles to library routines, and custom-instruction selection propagates
costs bottom-up through the annotated call graph (Figure 4).  This
module is the same idea applied to every trace the repo can produce --
a :class:`CycleProfile` reconstructs the span tree from any
:class:`~repro.obs.trace.Tracer` (farm cycle-clock spans and
logical-step spans alike), merges spans by call path, and reports
per-node **self** versus **cumulative** cycles and counts.

Attribution is computed in exact rational arithmetic
(:class:`fractions.Fraction` over the float span endpoints), so the
conservation identity

    sum(self cycles over all nodes) == sum(cumulative cycles of roots)

holds *exactly*, never approximately -- it is the tree-shaped analogue
of "every simulated cycle is accounted for once".  On concurrent trees
(the farm's parallel cores under one run span) a parent's self cycles
can be negative: children overlap in virtual time, and self is defined
as the subtractive residual precisely so conservation survives
concurrency.  Sequential traces (logical-step spans, call graphs)
always satisfy ``0 <= self <= cumulative``.

Profiles also build from the paper's annotated call graphs
(:meth:`CycleProfile.from_callgraph`) and raw ISS execution profiles
(:meth:`CycleProfile.from_iss_profile`), reusing
:mod:`repro.tie.callgraph` node names so ISS measurements and
macro-model estimates land on the same tree.

Exports: top-N hot-routine tables (:meth:`CycleProfile.render_top`), a
JSON profile (:meth:`CycleProfile.as_dict`), and folded-stack lines
(:meth:`CycleProfile.folded`) in the ``a;b;c cycles`` format
flamegraph.pl consumes.
"""

from fractions import Fraction
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["CycleProfile", "ProfileNode"]


class ProfileNode:
    """One call path in a merged profile tree."""

    __slots__ = ("name", "path", "count", "children", "_self", "_cum")

    def __init__(self, name: str, path: Tuple[str, ...], count: int = 0):
        self.name = name
        self.path = path
        self.count = count
        self.children: Dict[str, "ProfileNode"] = {}
        self._self = Fraction(0)
        self._cum = Fraction(0)

    @property
    def self_cycles(self) -> float:
        """Cycles attributed to this path alone (no children)."""
        return float(self._self)

    @property
    def cum_cycles(self) -> float:
        """Cycles of this path including everything beneath it."""
        return float(self._cum)

    def as_dict(self) -> Dict:
        return {"name": self.name, "path": list(self.path),
                "count": self.count, "self_cycles": self.self_cycles,
                "cum_cycles": self.cum_cycles,
                "children": [self.children[k].as_dict()
                             for k in sorted(self.children)]}

    def walk(self) -> Iterator["ProfileNode"]:
        """This node and every descendant, preorder, children sorted."""
        yield self
        for key in sorted(self.children):
            yield from self.children[key].walk()

    def __repr__(self) -> str:
        return (f"ProfileNode({';'.join(self.path)}: "
                f"self={self.self_cycles:.0f} cum={self.cum_cycles:.0f} "
                f"n={self.count})")


def _span_key(span, group_by: Tuple[str, ...]) -> str:
    """Merge key of one span: its name, plus any requested attrs."""
    extras = [f"{attr}={span.attrs[attr]}" for attr in group_by
              if attr in span.attrs]
    if extras:
        return f"{span.name}{{{','.join(extras)}}}"
    return span.name


class CycleProfile:
    """A forest of merged-by-path attribution nodes."""

    def __init__(self):
        self.roots: Dict[str, ProfileNode] = {}

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_tracer(cls, tracer, group_by: Sequence[str] = ()
                    ) -> "CycleProfile":
        """Profile a tracer's finished spans (any clock discipline)."""
        return cls.from_spans(tracer.spans, group_by=group_by)

    @classmethod
    def from_spans(cls, spans: Iterable, group_by: Sequence[str] = ()
                   ) -> "CycleProfile":
        """Reconstruct the span tree by ``parent_id`` and merge by
        call path.  Spans whose parent was never recorded (or never
        finished) become roots; unfinished spans are skipped."""
        group_by = tuple(group_by)
        finished = [s for s in spans if s.end is not None]
        by_id = {s.span_id: s for s in finished}
        child_spans: Dict[int, List] = {}
        root_spans: List = []
        for span in finished:
            parent = span.parent_id
            if parent is not None and parent in by_id:
                child_spans.setdefault(parent, []).append(span)
            else:
                root_spans.append(span)

        def merge(level_spans: List, path: Tuple[str, ...]
                  ) -> Dict[str, ProfileNode]:
            groups: Dict[str, List] = {}
            for span in level_spans:
                groups.setdefault(_span_key(span, group_by),
                                  []).append(span)
            nodes: Dict[str, ProfileNode] = {}
            for key in sorted(groups):
                group = groups[key]
                node = ProfileNode(key, path + (key,), count=len(group))
                node._cum = sum(
                    (Fraction(s.end) - Fraction(s.start) for s in group),
                    Fraction(0))
                beneath = [c for s in group
                           for c in child_spans.get(s.span_id, ())]
                node.children = merge(beneath, node.path)
                node._self = node._cum - sum(
                    (child._cum for child in node.children.values()),
                    Fraction(0))
                nodes[key] = node
            return nodes

        profile = cls()
        profile.roots = merge(root_spans, ())
        return profile

    @classmethod
    def from_callgraph(cls, graph) -> "CycleProfile":
        """Profile an annotated call graph (paper Figure 4 shape):
        node names are the graph's function names, counts multiply
        along call edges, and self cycles are ``local_cycles`` scaled
        by the path's invocation count -- so the root's cumulative
        equals :meth:`repro.tie.callgraph.CallGraph.total_cycles`."""
        graph.validate_acyclic()

        def build(name: str, calls: int,
                  path: Tuple[str, ...]) -> ProfileNode:
            gnode = graph.nodes[name]
            node = ProfileNode(name, path + (name,), count=calls)
            node._self = Fraction(gnode.local_cycles) * calls
            per_callee: Dict[str, int] = {}
            for callee, per_call in gnode.children:
                per_callee[callee] = per_callee.get(callee, 0) + per_call
            for callee in sorted(per_callee):
                node.children[callee] = build(
                    callee, calls * per_callee[callee], node.path)
            node._cum = node._self + sum(
                (child._cum for child in node.children.values()),
                Fraction(0))
            return node

        profile = cls()
        profile.roots = {graph.root: build(graph.root, 1, ())}
        return profile

    @classmethod
    def from_iss_profile(cls, profile, root: str,
                         truncate_at: Iterable[str] = ()
                         ) -> "CycleProfile":
        """Profile a raw ISS :class:`~repro.isa.machine.Profile` via
        the paper's annotated call graph, so macro-model estimates and
        ISS measurements share node names."""
        from repro.tie.callgraph import CallGraph
        graph = CallGraph.from_profile(profile, root,
                                       truncate_at=truncate_at)
        return cls.from_callgraph(graph)

    # -- aggregates ------------------------------------------------------

    def nodes(self) -> Iterator[ProfileNode]:
        """Every node, preorder, roots and children in sorted order."""
        for key in sorted(self.roots):
            yield from self.roots[key].walk()

    def find(self, path: Sequence[str]) -> Optional[ProfileNode]:
        """The node at an exact path, or ``None``."""
        path = tuple(path)
        if not path:
            return None
        node = self.roots.get(path[0])
        for key in path[1:]:
            if node is None:
                return None
            node = node.children.get(key)
        return node

    def total_cycles(self) -> float:
        """Sum of the roots' cumulative cycles (exact)."""
        return float(sum((r._cum for r in self.roots.values()),
                         Fraction(0)))

    def total_self(self) -> float:
        """Sum of self cycles over every node -- by conservation,
        exactly :meth:`total_cycles`."""
        return float(sum((n._self for n in self.nodes()), Fraction(0)))

    # -- exports ---------------------------------------------------------

    def top(self, n: int = 20, key: str = "self") -> List[ProfileNode]:
        """The ``n`` hottest nodes by self (default) or cumulative
        cycles; ties break on path for determinism."""
        if key not in ("self", "cum"):
            raise ValueError("key must be 'self' or 'cum'")
        attr = "_self" if key == "self" else "_cum"
        return sorted(self.nodes(),
                      key=lambda node: (-getattr(node, attr), node.path)
                      )[:n]

    def render_top(self, n: int = 20, key: str = "self") -> str:
        """The hot-routine table (the paper's per-routine accounting)."""
        total = self.total_cycles()
        lines = [f"{'self cyc':>14s} {'cum cyc':>14s} {'count':>8s} "
                 f"{'self%':>6s}  path"]
        for node in self.top(n, key=key):
            pct = (node.self_cycles / total * 100.0) if total else 0.0
            lines.append(f"{node.self_cycles:14.0f} "
                         f"{node.cum_cycles:14.0f} {node.count:8d} "
                         f"{pct:6.1f}  {';'.join(node.path)}")
        return "\n".join(lines)

    def folded(self) -> List[str]:
        """Folded-stack lines (``a;b;c cycles``) for flamegraph.pl;
        nodes whose self cycles round to zero or below are elided."""
        lines = []
        for node in self.nodes():
            cycles = round(node.self_cycles)
            if cycles > 0:
                lines.append(f"{';'.join(node.path)} {cycles}")
        return lines

    def as_dict(self) -> Dict:
        """JSON-ready profile (sorted, deterministic)."""
        return {"total_cycles": self.total_cycles(),
                "total_self_cycles": self.total_self(),
                "roots": [self.roots[k].as_dict()
                          for k in sorted(self.roots)]}
