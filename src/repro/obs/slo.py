"""Shared service-level-objective vocabulary.

An SLO is a *gate on a live run* the way a bench
:class:`~repro.obs.bench.Gate` is a gate on a recorded baseline: a
metric, a target, and a direction ("lower is better" for latency,
"higher is better" for throughput).  This module owns that vocabulary
so the autoscaling control loop (:mod:`repro.farm.autoscale`), the
runtime :class:`SloMonitor`, and benchmark gate construction all speak
the same objects instead of growing three private notions of "is the
service healthy".

:class:`SloTarget` started life inside ``repro.farm.autoscale`` (p99
latency + secure Mbps only); it lives here now, generalized with
session-cache hit-rate and utilization floors, and the old import path
remains as a deprecation shim.

Like everything in :mod:`repro.obs`, this module is dependency-free
within the repo (stdlib + :mod:`repro.obs` only), so any layer may
import it without cycles.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry

__all__ = ["SloMonitor", "SloObjective", "SloReport", "SloTarget",
           "SloWindow", "parse_slo"]

#: Metric directions: "lower" means measured values above the target
#: violate (latency-like), "higher" means values below violate
#: (throughput-like) -- the same convention as ``obs.bench.Gate``.
_DIRECTIONS = ("lower", "higher")


@dataclass(frozen=True)
class SloObjective:
    """One objective: a metric name, a target value, and a direction."""

    metric: str
    target: float
    direction: str = "lower"

    def __post_init__(self):
        if self.direction not in _DIRECTIONS:
            raise ValueError(
                f"direction must be one of {_DIRECTIONS}, "
                f"not {self.direction!r}")

    def violated_by(self, value: float) -> bool:
        """Does ``value`` breach this objective?"""
        if self.direction == "lower":
            return value > self.target
        return value < self.target

    def as_gate(self, tolerance: float = 0.0):
        """The equivalent benchmark gate (same direction semantics)."""
        from repro.obs.bench import Gate
        return Gate(tolerance=tolerance, direction=self.direction)

    def as_dict(self) -> Dict:
        return {"metric": self.metric, "target": self.target,
                "direction": self.direction}


@dataclass(frozen=True)
class SloTarget:
    """A bundle of objectives evaluated per window (None = don't care).

    ``p99_ms`` caps request latency, ``secure_mbps`` floors secure
    throughput (the two objectives the autoscale loop always had);
    ``cache_hit_rate`` floors session-cache effectiveness and
    ``utilization`` floors farm efficiency (the two the runtime
    monitor adds).
    """

    p99_ms: Optional[float] = None
    secure_mbps: Optional[float] = None
    cache_hit_rate: Optional[float] = None
    utilization: Optional[float] = None

    def objectives(self) -> Tuple[SloObjective, ...]:
        """The non-None objectives, in declaration order."""
        pairs = (("p99_ms", self.p99_ms, "lower"),
                 ("secure_mbps", self.secure_mbps, "higher"),
                 ("cache_hit_rate", self.cache_hit_rate, "higher"),
                 ("utilization", self.utilization, "higher"))
        return tuple(SloObjective(metric=name, target=value,
                                  direction=direction)
                     for name, value, direction in pairs
                     if value is not None)

    def violations(self, sample: Dict[str, float]) -> List[str]:
        """Names of the objectives ``sample`` breaches (missing
        metrics are treated as unmeasured, never as violations)."""
        breached = []
        for objective in self.objectives():
            value = sample.get(objective.metric)
            if value is not None and objective.violated_by(value):
                breached.append(objective.metric)
        return breached

    def met_by(self, p99_ms: float, secure_mbps: float) -> bool:
        """Legacy two-metric check (the original autoscale surface)."""
        if self.p99_ms is not None and p99_ms > self.p99_ms:
            return False
        if self.secure_mbps is not None and secure_mbps < self.secure_mbps:
            return False
        return True

    def as_dict(self) -> Dict:
        return {"p99_ms": self.p99_ms, "secure_mbps": self.secure_mbps,
                "cache_hit_rate": self.cache_hit_rate,
                "utilization": self.utilization}

    @classmethod
    def from_dict(cls, payload: Dict) -> "SloTarget":
        return cls(p99_ms=payload.get("p99_ms"),
                   secure_mbps=payload.get("secure_mbps"),
                   cache_hit_rate=payload.get("cache_hit_rate"),
                   utilization=payload.get("utilization"))


def parse_slo(spec: str) -> SloTarget:
    """Parse ``"p99_ms=5,secure_mbps=10"`` into an :class:`SloTarget`
    (the CLI ``--slo`` flag's format)."""
    fields = {"p99_ms", "secure_mbps", "cache_hit_rate", "utilization"}
    values: Dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"bad SLO component {part!r} (want metric=value)")
        name, _, raw = part.partition("=")
        name = name.strip()
        if name not in fields:
            raise ValueError(f"unknown SLO metric {name!r}; "
                             f"known: {sorted(fields)}")
        try:
            values[name] = float(raw)
        except ValueError:
            raise ValueError(
                f"bad SLO value {raw!r} for {name}") from None
    if not values:
        raise ValueError("empty SLO spec")
    return SloTarget(**values)


@dataclass
class SloWindow:
    """One evaluated window: the measured sample and what it breached.

    ``attainment`` is the *cumulative* attainment through this window
    (fraction of windows up to and including it with every objective
    met) -- the running health figure a live dashboard plots.  The
    monitor fills it in; hand-built windows may leave it ``None``.
    """

    index: int
    start_s: float
    end_s: float
    sample: Dict[str, float]
    violations: List[str] = field(default_factory=list)
    attainment: Optional[float] = None

    @property
    def met(self) -> bool:
        return not self.violations

    def as_dict(self) -> Dict:
        return {"index": self.index, "start_s": self.start_s,
                "end_s": self.end_s, "sample": dict(self.sample),
                "violations": list(self.violations), "met": self.met,
                "attainment": self.attainment}


@dataclass
class SloReport:
    """A monitor's verdict over a whole run."""

    target: SloTarget
    window_seconds: float
    windows: List[SloWindow] = field(default_factory=list)

    @property
    def violations(self) -> int:
        """Total objective breaches across all windows."""
        return sum(len(w.violations) for w in self.windows)

    @property
    def windows_violated(self) -> int:
        return sum(1 for w in self.windows if not w.met)

    @property
    def attainment(self) -> float:
        """Fraction of windows with every objective met (1.0 when no
        windows were evaluated -- nothing was breached)."""
        if not self.windows:
            return 1.0
        return 1.0 - self.windows_violated / len(self.windows)

    def as_dict(self) -> Dict:
        return {"target": self.target.as_dict(),
                "window_seconds": self.window_seconds,
                "windows_evaluated": len(self.windows),
                "windows_violated": self.windows_violated,
                "violations": self.violations,
                "attainment": self.attainment,
                "windows": [w.as_dict() for w in self.windows]}


class SloMonitor:
    """Runtime SLO checker: feed it per-window samples, get a report.

    Each :meth:`observe` call evaluates one window's measured sample
    dict (``{"p99_ms": ..., "secure_mbps": ..., ...}``) against the
    target's objectives.  With a :class:`~repro.obs.MetricsRegistry`
    attached, every window publishes ``farm.slo_windows`` /
    ``farm.slo_violations`` counters, a breach bumps the
    ``farm.slo_alerts`` counter per violated metric, and the final
    ``farm.slo_attainment`` gauge lands on :meth:`finish`.
    """

    def __init__(self, target: SloTarget, window_seconds: float = 1.0,
                 registry: Optional[MetricsRegistry] = None,
                 scheduler: str = "?"):
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.target = target
        self.window_seconds = window_seconds
        self.registry = registry
        self.scheduler = scheduler
        self.report = SloReport(target=target,
                                window_seconds=window_seconds)

    def observe(self, sample: Dict[str, float]) -> SloWindow:
        """Evaluate one window's sample; returns its verdict."""
        index = len(self.report.windows)
        window = SloWindow(
            index=index, start_s=index * self.window_seconds,
            end_s=(index + 1) * self.window_seconds,
            sample=dict(sample),
            violations=self.target.violations(sample))
        self.report.windows.append(window)
        window.attainment = self.report.attainment
        if self.registry is not None:
            self.registry.counter("farm.slo_windows",
                                  scheduler=self.scheduler).inc()
            if window.violations:
                self.registry.counter(
                    "farm.slo_violations",
                    scheduler=self.scheduler).inc(len(window.violations))
                for metric in window.violations:
                    self.registry.counter("farm.slo_alerts",
                                          scheduler=self.scheduler,
                                          metric=metric).inc()
        return window

    def observe_all(self, samples: Sequence[Dict[str, float]]
                    ) -> List[SloWindow]:
        """Evaluate a run's windows in order; returns their verdicts.

        Historically this sealed the run and returned the
        :class:`SloReport`, silently discarding the per-window
        verdicts it had just computed; now the windows come back and
        the caller seals with :meth:`finish` (which still returns the
        full report)."""
        return [self.observe(sample) for sample in samples]

    def finish(self) -> SloReport:
        """Seal the run: publish the attainment gauge, return the
        report."""
        if self.registry is not None:
            self.registry.gauge("farm.slo_attainment",
                                scheduler=self.scheduler).set(
                self.report.attainment)
        return self.report
