"""Deterministic benchmark scenarios and the regression gate.

A :class:`Scenario` is a named, zero-argument callable producing a
flat metrics dict from the existing estimators and simulators -- cycle
counts and model outputs only, never wall-clock or unseeded
randomness, so a scenario's metrics are **byte-stable across machines
and runs**.  Baselines are committed as ``BENCH_<scenario>.json``
files; ``python -m repro bench --check`` re-runs the scenarios,
compares each gated metric against its committed baseline with a
per-metric :class:`Gate` (relative tolerance + which direction is
better), and exits non-zero on any regression.  That is what lets
every later performance PR be justified -- and gated -- by numbers.

The framework here (registry, baseline I/O, comparison) imports
nothing outside :mod:`repro.obs`; the built-in scenarios lazily import
the layers they measure inside their run functions, so ``repro.obs``
stays cycle-free.
"""

import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

__all__ = ["BASELINE_SCHEMA", "DEFAULT_BASELINE_DIR", "Gate",
           "MetricDiff", "Scenario", "ScenarioReport", "baseline_filename",
           "baseline_path", "check_scenarios", "compare_metrics",
           "get_scenario", "load_baseline", "record_extra",
           "register_scenario", "render_report", "run_scenario",
           "scenario_extras", "scenario_names", "write_baseline"]

BASELINE_SCHEMA = 1

#: Where the committed baselines live, relative to the repo root (the
#: CLI's ``--dir`` default).
DEFAULT_BASELINE_DIR = os.path.join("benchmarks", "baselines")


@dataclass(frozen=True)
class Gate:
    """Pass/fail policy for one metric.

    ``direction`` says which way is better; a current value that is
    worse than ``baseline * (1 +/- tolerance)`` is a regression.
    ``tolerance`` is relative (0.10 == 10%); 0.0 demands exactness,
    which deterministic metrics can honestly promise.
    """

    tolerance: float = 0.0
    direction: str = "lower"     # "lower" or "higher" is better

    def __post_init__(self):
        if self.direction not in ("lower", "higher"):
            raise ValueError("direction must be 'lower' or 'higher'")
        if self.tolerance < 0:
            raise ValueError("tolerance must be non-negative")

    def regressed(self, baseline: float, current: float) -> bool:
        if self.direction == "lower":
            return current > baseline * (1.0 + self.tolerance) + 1e-12
        return current < baseline * (1.0 - self.tolerance) - 1e-12


@dataclass(frozen=True)
class Scenario:
    """One named benchmark: a deterministic metrics producer + gates."""

    name: str
    description: str
    run: Callable[[], Dict[str, object]]
    gates: Mapping[str, Gate] = field(default_factory=dict)


_SCENARIOS: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add (or replace) a scenario in the process-global registry."""
    _SCENARIOS[scenario.name] = scenario
    return scenario


def scenario_names() -> List[str]:
    return sorted(_SCENARIOS)


def get_scenario(name: str) -> Scenario:
    if name not in _SCENARIOS:
        raise KeyError(f"unknown bench scenario {name!r}; "
                       f"known: {', '.join(scenario_names())}")
    return _SCENARIOS[name]


# Non-gated side-channel values (wall-clock, measured speedups) keyed
# by scenario name.  Extras are machine-dependent by nature, so they
# are surfaced in the CLI's JSON envelope but NEVER written into
# baselines -- baselines stay byte-stable.
_EXTRAS: Dict[str, Dict[str, object]] = {}
_running_scenario: List[str] = []


def record_extra(key: str, value) -> None:
    """Attach a non-gated extra to the currently running scenario.

    A no-op outside :func:`run_scenario`, so scenario bodies can call
    it unconditionally.
    """
    if _running_scenario:
        _EXTRAS.setdefault(_running_scenario[-1], {})[key] = value


def scenario_extras(name: str) -> Dict[str, object]:
    """Extras recorded by ``name``'s most recent run (possibly empty)."""
    return dict(_EXTRAS.get(name, ()))


def run_scenario(name: str) -> Dict[str, object]:
    """Run one scenario and return its (sorted) metrics dict.

    Wall-clock for the run is recorded as the ``wall_seconds`` extra
    (see :func:`scenario_extras`) -- visible in ``bench --json``
    envelopes but excluded from baselines.
    """
    scenario = get_scenario(name)
    _EXTRAS.pop(name, None)
    _running_scenario.append(name)
    start = time.perf_counter()
    try:
        metrics = scenario.run()
    finally:
        wall = time.perf_counter() - start
        _running_scenario.pop()
        _EXTRAS.setdefault(name, {})["wall_seconds"] = wall
    return {key: metrics[key] for key in sorted(metrics)}


# -- baseline I/O ------------------------------------------------------------

def baseline_filename(name: str) -> str:
    return f"BENCH_{name}.json"


def baseline_path(directory: str, name: str) -> str:
    return os.path.join(directory, baseline_filename(name))


def write_baseline(directory: str, name: str,
                   metrics: Dict[str, object]) -> str:
    """Persist one scenario's metrics; the payload is serialized with
    sorted keys and no timestamps, so identical runs write identical
    bytes (the property the determinism test asserts)."""
    os.makedirs(directory, exist_ok=True)
    path = baseline_path(directory, name)
    payload = {"schema": BASELINE_SCHEMA, "scenario": name,
               "description": get_scenario(name).description,
               "metrics": {key: metrics[key] for key in sorted(metrics)}}
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_baseline(directory: str, name: str) -> Optional[Dict[str, object]]:
    """The committed metrics for ``name``, or ``None`` if absent or
    unreadable (an unreadable baseline is a gate failure, reported by
    the caller, never a crash)."""
    path = baseline_path(directory, name)
    if not os.path.exists(path):
        return None
    try:
        with open(path) as fh:
            payload = json.load(fh)
        if payload.get("schema") != BASELINE_SCHEMA:
            return None
        return dict(payload["metrics"])
    except (OSError, ValueError, KeyError, TypeError):
        return None


# -- comparison --------------------------------------------------------------

@dataclass
class MetricDiff:
    """One metric's baseline-vs-current comparison row."""

    metric: str
    baseline: object
    current: object
    status: str                   # ok | regression | improved | changed
    #                             # | new | missing
    delta_pct: Optional[float] = None
    gated: bool = False

    def as_dict(self) -> Dict:
        return {"metric": self.metric, "baseline": self.baseline,
                "current": self.current, "status": self.status,
                "delta_pct": self.delta_pct, "gated": self.gated}


@dataclass
class ScenarioReport:
    """Every metric row of one scenario, plus the verdict."""

    scenario: str
    rows: List[MetricDiff]
    failed: bool
    error: Optional[str] = None

    def regressions(self) -> List[MetricDiff]:
        return [row for row in self.rows
                if row.status in ("regression", "missing") and row.gated]

    def as_dict(self) -> Dict:
        return {"scenario": self.scenario, "failed": self.failed,
                "error": self.error,
                "rows": [row.as_dict() for row in self.rows]}


def _numeric(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def compare_metrics(scenario: Scenario, baseline: Dict[str, object],
                    current: Dict[str, object]) -> ScenarioReport:
    """Diff two metrics dicts under the scenario's gates.

    Only gated metrics can fail the report: a gated metric that is
    worse than its tolerance allows, or that vanished from the current
    run, is a regression.  Ungated metrics are compared informationally
    (``changed``/``ok``); metrics new in the current run are ``new``.
    """
    rows: List[MetricDiff] = []
    failed = False
    for metric in sorted(set(baseline) | set(current)):
        gate = scenario.gates.get(metric)
        gated = gate is not None
        if metric not in current:
            rows.append(MetricDiff(metric, baseline[metric], None,
                                   "missing", gated=gated))
            failed = failed or gated
            continue
        if metric not in baseline:
            rows.append(MetricDiff(metric, None, current[metric], "new",
                                   gated=gated))
            continue
        base, cur = baseline[metric], current[metric]
        if _numeric(base) and _numeric(cur):
            delta = ((cur - base) / base * 100.0) if base else None
            if gated and gate.regressed(base, cur):
                rows.append(MetricDiff(metric, base, cur, "regression",
                                       delta_pct=delta, gated=True))
                failed = True
            elif cur == base:
                rows.append(MetricDiff(metric, base, cur, "ok",
                                       delta_pct=0.0, gated=gated))
            else:
                better = (gated
                          and ((gate.direction == "lower" and cur < base)
                               or (gate.direction == "higher"
                                   and cur > base)))
                rows.append(MetricDiff(
                    metric, base, cur, "improved" if better else "changed",
                    delta_pct=delta, gated=gated))
        else:
            status = "ok" if base == cur else "changed"
            rows.append(MetricDiff(metric, base, cur, status, gated=gated))
    return ScenarioReport(scenario=scenario.name, rows=rows, failed=failed)


def check_scenarios(directory: str,
                    names: Optional[List[str]] = None
                    ) -> Tuple[List[ScenarioReport], bool]:
    """Run scenarios and gate them against committed baselines.

    Returns the per-scenario reports and an overall ok flag; a missing
    baseline fails its scenario (there is nothing to gate against).
    """
    reports = []
    ok = True
    for name in (names or scenario_names()):
        baseline = load_baseline(directory, name)
        if baseline is None:
            reports.append(ScenarioReport(
                scenario=name, rows=[], failed=True,
                error=f"no baseline at {baseline_path(directory, name)} "
                      f"(record one with: python -m repro bench)"))
            ok = False
            continue
        report = compare_metrics(get_scenario(name), baseline,
                                 run_scenario(name))
        reports.append(report)
        ok = ok and not report.failed
    return reports, ok


def render_report(reports: List[ScenarioReport],
                  verbose: bool = False) -> str:
    """Human-readable gate report (regressions always shown; every
    row with ``verbose``)."""
    lines = []
    for report in reports:
        verdict = "FAIL" if report.failed else "ok"
        lines.append(f"[{verdict}] {report.scenario}")
        if report.error:
            lines.append(f"    {report.error}")
        for row in report.rows:
            if not verbose and row.status in ("ok", "changed", "new",
                                              "improved"):
                continue
            delta = (f" ({row.delta_pct:+.1f}%)"
                     if row.delta_pct is not None else "")
            lines.append(f"    {row.status:10s} {row.metric}: "
                         f"{row.baseline} -> {row.current}{delta}")
    return "\n".join(lines)


# -- built-in scenarios ------------------------------------------------------
#
# Each scenario lazily imports the layers it measures, so importing
# repro.obs.bench never drags the whole stack in (and obs stays
# dependency-free).  All of them share one measured cost pair per
# process through the module memo below -- the ISS kernel runs behind
# it are the only expensive step.

_pair_memo: List = []


def _measured_pair():
    """Both stock platforms' unit costs, measured once per process."""
    if not _pair_memo:
        from repro.costs import PlatformCosts
        from repro.platform import SecurityPlatform
        from repro.ssl import fixtures
        base = PlatformCosts.measure(SecurityPlatform.base(),
                                     fixtures.SERVER_1024)
        opt = PlatformCosts.measure(SecurityPlatform.optimized(),
                                    fixtures.SERVER_1024)
        _pair_memo.append((base, opt))
    return _pair_memo[0]


def _ssl_transaction_metrics() -> Dict[str, object]:
    from repro.ssl.transaction import SslWorkloadModel
    base, opt = _measured_pair()
    model = SslWorkloadModel(base, opt)
    metrics: Dict[str, object] = {
        "asymptotic_speedup": model.asymptotic_speedup(),
        "resumption_gain_base_1kb": model.resumption_gain(base, 1024),
    }
    for kb in (1, 16):
        size = kb * 1024
        for label, costs in (("base", base), ("opt", opt)):
            full = model.breakdown(costs, size)
            resumed = model.breakdown(costs, size, resumed=True)
            metrics[f"{label}.full_{kb}kb_cycles"] = full.total
            metrics[f"{label}.resumed_{kb}kb_cycles"] = resumed.total
        metrics[f"speedup_{kb}kb"] = model.speedup(size)
    return metrics


def _farm_mixed_metrics() -> Dict[str, object]:
    from repro.farm import (FarmConfig, TrafficProfile, build_farm,
                            generate_requests, run_farm)
    from repro.farm.scheduler import scheduler_names as farm_schedulers
    base, opt = _measured_pair()
    specs = build_farm(4, base, opt, extended_fraction=0.5)
    requests = generate_requests(
        TrafficProfile(arrival_rate=60.0, resumption_ratio=0.4),
        200, seed=1)
    # The unified facade: every scenario drives the same FarmConfig /
    # run_farm path the CLI and shard layer use (shards=1 is the
    # plain simulator, bit for bit -- these baselines prove it).
    config = FarmConfig(specs=tuple(specs), requests=tuple(requests))
    metrics: Dict[str, object] = {"requests": 200.0, "cores": 4.0}
    for name in farm_schedulers():
        row = run_farm(config.with_scheduler(name)).metrics
        metrics[f"{name}.sessions_per_s"] = row.sessions_per_s
        metrics[f"{name}.secure_mbps"] = row.secure_mbps
        metrics[f"{name}.p50_ms"] = row.p50_ms
        metrics[f"{name}.p95_ms"] = row.p95_ms
        metrics[f"{name}.p99_ms"] = row.p99_ms
        metrics[f"{name}.mean_utilization"] = row.mean_utilization
        metrics[f"{name}.cache_hit_rate"] = row.cache_hit_rate
    return metrics


def _farm_tls13_metrics() -> Dict[str, object]:
    from repro.farm import (FarmConfig, TrafficProfile, build_farm,
                            generate_requests, run_farm)
    from repro.farm.scheduler import scheduler_names as farm_schedulers
    base, opt = _measured_pair()
    specs = build_farm(4, base, opt, extended_fraction=0.5)
    requests = generate_requests(
        TrafficProfile(arrival_rate=60.0, resumption_ratio=0.5,
                       mix={"tls13": 0.7, "wep": 0.3}),
        200, seed=1)
    config = FarmConfig(specs=tuple(specs), requests=tuple(requests))
    metrics: Dict[str, object] = {
        "requests": 200.0, "cores": 4.0,
        "tls13_requests": float(sum(1 for r in requests
                                    if r.protocol == "tls13")),
        "tls13_resumed": float(sum(1 for r in requests
                                   if r.protocol == "tls13"
                                   and r.resumed)),
    }
    for name in farm_schedulers():
        row = run_farm(config.with_scheduler(name)).metrics
        metrics[f"{name}.sessions_per_s"] = row.sessions_per_s
        metrics[f"{name}.secure_mbps"] = row.secure_mbps
        metrics[f"{name}.p95_ms"] = row.p95_ms
        metrics[f"{name}.p99_ms"] = row.p99_ms
        # The generic session-cache seam: tls13 resumption rides the
        # same per-protocol caches and affinity path SSL uses.
        tls13 = row.session_cache.get("tls13", {})
        metrics[f"{name}.tls13_cache_hits"] = tls13.get("hits", 0.0)
        metrics[f"{name}.tls13_cache_hit_rate"] = tls13.get("hit_rate",
                                                            0.0)
    return metrics


def _farm_kasumi_metrics() -> Dict[str, object]:
    from repro.farm import (FarmConfig, TrafficProfile, build_farm,
                            generate_requests, run_farm)
    from repro.farm.scheduler import scheduler_names as farm_schedulers
    base, opt = _measured_pair()
    specs = build_farm(4, base, opt, extended_fraction=0.5)
    requests = generate_requests(
        TrafficProfile(arrival_rate=80.0,
                       mix={"kasumi": 0.6, "wep": 0.4}),
        200, seed=1)
    config = FarmConfig(specs=tuple(specs), requests=tuple(requests))
    metrics: Dict[str, object] = {
        "requests": 200.0, "cores": 4.0,
        "kasumi_requests": float(sum(1 for r in requests
                                     if r.protocol == "kasumi")),
        # The kernel-measured per-byte rate the registered model
        # charges (both platforms: KASUMI is not TIE-accelerated).
        "kasumi_cycles_per_byte": base.overhead(
            "kasumi_cycles_per_byte", 0.0),
    }
    for name in farm_schedulers():
        row = run_farm(config.with_scheduler(name)).metrics
        metrics[f"{name}.sessions_per_s"] = row.sessions_per_s
        metrics[f"{name}.secure_mbps"] = row.secure_mbps
        metrics[f"{name}.p95_ms"] = row.p95_ms
        metrics[f"{name}.p99_ms"] = row.p99_ms
        metrics[f"{name}.mean_utilization"] = row.mean_utilization
    return metrics


def _characterize_metrics() -> Dict[str, object]:
    from repro.costs.cache import (CharacterizationCache,
                                   CharacterizationKey)
    # A deliberately fresh, disk-less cache: this scenario measures the
    # characterization itself, so a warm store must not short-circuit
    # it (and its metrics stay independent of local cache state).
    cache = CharacterizationCache(cache_dir=None)
    metrics: Dict[str, object] = {}
    for label, key in (("base", CharacterizationKey()),
                       ("ext", CharacterizationKey(add_width=8,
                                                   mac_width=8))):
        models = cache.models_for(key)
        errors = [m.fit.mean_abs_pct_error for m in models]
        metrics[f"{label}.n_models"] = float(len(models))
        metrics[f"{label}.mean_fit_error_pct"] = sum(errors) / len(errors)
        metrics[f"{label}.max_fit_error_pct"] = max(errors)
        for model in models:
            metrics[f"{label}.cycles.{model.routine}@32"] = \
                models.predict(model.routine, 32)
    # Warm path: the second lookup must be a pure memo hit.
    cache.models_for(CharacterizationKey())
    metrics["cold.characterizations"] = float(
        cache.stats.characterizations)
    metrics["warm.memo_hits"] = float(cache.stats.memo_hits)
    return metrics


def _modexp_candidates_metrics() -> Dict[str, object]:
    from repro.costs import characterize_cached
    from repro.crypto.modexp import iter_configs
    from repro.explore import (AlgorithmExplorer, ExplorationStore,
                               RsaDecryptWorkload)
    models = characterize_cached()
    configs = list(iter_configs())[::90]        # 5 strided candidates
    explorer = AlgorithmExplorer(models, RsaDecryptWorkload.bits512())
    # A disabled store: this scenario measures exploration itself, so
    # a warm local store must not short-circuit it.
    results = explorer.explore(configs,
                               store=ExplorationStore(enabled=False))
    cycles = sorted(r.estimated_cycles for r in results)
    best = results[0]
    return {
        "candidates": float(len(results)),
        "correct_fraction": (sum(1 for r in results if r.correct)
                             / len(results)),
        "best_cycles": best.estimated_cycles,
        "best_label": best.label,
        "median_cycles": cycles[len(cycles) // 2],
        "worst_cycles": cycles[-1],
    }


def _explore_parallel_metrics() -> Dict[str, object]:
    import tempfile
    from repro.costs import characterize_cached
    from repro.crypto.modexp import iter_configs
    from repro.explore import (AlgorithmExplorer, ExplorationStore,
                               RsaDecryptWorkload)
    from repro.parallel import ThreadExecutor
    models = characterize_cached()
    configs = list(iter_configs())[::90]        # 5 strided candidates
    explorer = AlgorithmExplorer(models, RsaDecryptWorkload.bits512())
    serial = explorer.explore(configs,
                              store=ExplorationStore(enabled=False))
    with tempfile.TemporaryDirectory() as tmp:
        # Cold: 2 worker threads filling a fresh persistent store.
        with ThreadExecutor(2) as pool:
            cold = explorer.explore(configs, executor=pool,
                                    store=ExplorationStore(cache_dir=tmp))
        cold_run = explorer.last_run
        # Warm: a fresh store object over the same directory (a new
        # process, effectively) must evaluate nothing.
        warm = explorer.explore(configs,
                                store=ExplorationStore(cache_dir=tmp))
        warm_run = explorer.last_run
    return {
        "candidates": float(len(serial)),
        "best_cycles": serial[0].estimated_cycles,
        "chunks": float(cold_run.chunks),
        "cold_evaluated": float(cold_run.evaluated),
        "warm_evaluated": float(warm_run.evaluated),
        "parallel_max_abs_cycle_diff": max(
            abs(a.estimated_cycles - b.estimated_cycles)
            for a, b in zip(serial, cold)),
        "parallel_label_agreement": float(all(
            a.label == b.label for a, b in zip(serial, cold))),
        "warm_max_abs_cycle_diff": max(
            abs(a.estimated_cycles - b.estimated_cycles)
            for a, b in zip(serial, warm)),
    }


def _farm_sharded_metrics() -> Dict[str, object]:
    from dataclasses import replace
    from repro.farm import (FarmConfig, FarmSimulator, TrafficProfile,
                            build_farm, generate_requests,
                            make_scheduler, run_farm, summarize)
    from repro.parallel import ThreadExecutor
    base, opt = _measured_pair()
    specs = build_farm(64, base, opt, extended_fraction=0.5)
    profile = TrafficProfile(arrival_rate=400.0, clients=256)
    n = 640
    keys = ("completed", "sessions_per_s", "secure_mbps", "p50_ms",
            "p95_ms", "p99_ms", "mean_utilization", "cache_hit_rate")
    requests = generate_requests(profile, n, seed=1)
    plain = summarize(FarmSimulator(
        specs, make_scheduler("preferential")).run(requests))
    config = FarmConfig(specs=tuple(specs), scheduler="preferential",
                        profile=profile, n_requests=n, seed=1)
    one = run_farm(config).metrics
    # shards=1 must be *bit*-identical to the plain simulator.
    shards1_diff = max(abs(getattr(plain, key) - getattr(one, key))
                       for key in keys)
    config8 = replace(config, shards=8)
    serial8 = run_farm(config8).metrics
    with ThreadExecutor(4) as pool:
        par8 = run_farm(config8, executor=pool).metrics
    # ...and a sharded run must not depend on the executor.
    jobs_diff = max(abs(getattr(serial8, key) - getattr(par8, key))
                    for key in keys)
    return {
        "cores": 64.0,
        "requests": float(n),
        "shards1.max_abs_metric_diff": shards1_diff,
        "shard8.jobs_metric_diff": jobs_diff,
        "shard8.completed": float(serial8.completed),
        "shard8.sessions_per_s": serial8.sessions_per_s,
        "shard8.p99_ms": serial8.p99_ms,
        "shard8.mean_utilization": serial8.mean_utilization,
        "shard8.cache_hit_rate": serial8.cache_hit_rate,
        # Sharding skew: per-shard PRNG streams differ from the global
        # one, so aggregate rates drift a little -- the ratios are
        # deterministic and the gates keep the drift bounded.
        "shard8.sessions_per_s_skew": (serial8.sessions_per_s
                                       / plain.sessions_per_s),
        "shard8.p99_ms_skew": (serial8.p99_ms / plain.p99_ms
                               if plain.p99_ms else 0.0),
    }


def _farm_events_metrics() -> Dict[str, object]:
    from repro.farm import (FarmConfig, TrafficProfile, build_farm,
                            generate_requests, run_farm)
    base, opt = _measured_pair()
    metrics: Dict[str, object] = {}
    for cores, n, rate in ((16, 320, 150.0), (64, 640, 500.0)):
        specs = build_farm(cores, base, opt, extended_fraction=0.5)
        requests = generate_requests(
            TrafficProfile(arrival_rate=rate, clients=4 * cores), n,
            seed=1)
        runs = {}
        for kind in ("heap", "calendar"):
            run = run_farm(FarmConfig(specs=tuple(specs),
                                      scheduler="least-loaded",
                                      requests=tuple(requests),
                                      queue=kind))
            runs[kind] = (run.result, run.sharded.queue_stats)
        heap_result, _ = runs["heap"]
        cal_result, cal_stats = runs["calendar"]
        prefix = f"c{cores}"
        metrics[f"{prefix}.identical"] = float(
            heap_result.completions == cal_result.completions
            and heap_result.makespan_cycles == cal_result.makespan_cycles)
        metrics[f"{prefix}.events"] = float(
            heap_result.events_processed)
        # The calendar queue's cost model: bucket scans per pop is the
        # amortized-O(1) claim, direct searches are its failure mode.
        metrics[f"{prefix}.calendar.scans_per_pop"] = (
            cal_stats["scans"] / cal_stats["pops"])
        metrics[f"{prefix}.calendar.resizes"] = cal_stats["resizes"]
        metrics[f"{prefix}.calendar.direct_searches"] = \
            cal_stats["direct_searches"]
        metrics[f"{prefix}.calendar.buckets"] = cal_stats["buckets"]
    return metrics


def _farm_chaos_metrics() -> Dict[str, object]:
    from dataclasses import replace
    from repro.farm import (FarmConfig, FaultEvent, FaultPlan,
                            TrafficProfile, build_farm,
                            generate_fault_plan, generate_requests,
                            run_farm)
    from repro.obs.slo import SloTarget
    from repro.parallel import ThreadExecutor
    from repro.ssl.throughput import DEFAULT_CLOCK_HZ
    base, opt = _measured_pair()
    specs = build_farm(8, base, opt, extended_fraction=0.5)
    profile = TrafficProfile(arrival_rate=150.0, clients=64)
    n = 400
    second = DEFAULT_CLOCK_HZ
    # An explicit, committed plan: an extended core dies mid-run and
    # recovers, a second core loses its session cache, another
    # extended core degrades to base-ISA pricing until recovery.
    plan = FaultPlan(events=(
        FaultEvent(cycle=0.5 * second, kind="core_down", core=1),
        FaultEvent(cycle=1.5 * second, kind="core_up", core=1),
        FaultEvent(cycle=0.8 * second, kind="cache_flush", core=4),
        FaultEvent(cycle=0.6 * second, kind="degrade", core=2),
        FaultEvent(cycle=1.8 * second, kind="core_up", core=2),
    ), degraded_costs=base)
    slo = SloTarget(p99_ms=20.0, secure_mbps=1.0)
    config = FarmConfig(specs=tuple(specs), scheduler="preferential",
                        profile=profile, n_requests=n, seed=1,
                        faults=plan, slo=slo)
    chaos = run_farm(config)
    again = run_farm(config)
    keys = ("completed", "sessions_per_s", "secure_mbps", "p50_ms",
            "p95_ms", "p99_ms", "mean_utilization", "cache_hit_rate")
    repeat_diff = max(abs(getattr(chaos.metrics, k)
                          - getattr(again.metrics, k)) for k in keys)
    # The same plan under shards must stay deterministic: a sharded
    # chaos run is executor-independent and repeatable.
    config4 = replace(config, shards=4)
    serial4 = run_farm(config4)
    with ThreadExecutor(2) as pool:
        par4 = run_farm(config4, executor=pool)
    shard_jobs_diff = max(abs(getattr(serial4.metrics, k)
                              - getattr(par4.metrics, k)) for k in keys)
    healthy = run_farm(replace(config, faults=None))
    # Chaos must cost something: the wounded farm completes the same
    # offered load strictly slower at the tail.
    metrics: Dict[str, object] = {
        "cores": 8.0, "requests": float(n),
        "plan_events": float(len(plan.events)),
        "fault_events": float(chaos.result.fault_events),
        "redispatches": float(chaos.result.redispatches),
        "sessions_flushed": float(chaos.faults.sessions_flushed),
        "downtime_megacycles": chaos.faults.downtime_cycles / 1e6,
        "repeat_metric_diff": repeat_diff,
        "shard4.jobs_metric_diff": shard_jobs_diff,
        "shard4.fault_events": float(serial4.result.fault_events),
        "completed": float(chaos.metrics.completed),
        "p99_ms": chaos.metrics.p99_ms,
        "p99_slowdown": (chaos.metrics.p99_ms / healthy.metrics.p99_ms
                         if healthy.metrics.p99_ms else 0.0),
        "slo_windows": float(len(chaos.slo.windows)),
        "slo_windows_violated": float(chaos.slo.windows_violated),
        "slo_violations": float(chaos.slo.violations),
        "slo_attainment": chaos.slo.attainment,
        # The seeded-generation path: the drawn schedule is a pure
        # function of (seed, cores, horizon, episodes).
        "gen.events": float(len(generate_fault_plan(
            7, 8, 3.0 * second, episodes=4).events)),
    }
    return metrics


def _farm_timeseries_metrics() -> Dict[str, object]:
    import io
    from dataclasses import replace
    from repro.farm import (FarmConfig, FarmSimulator, FaultEvent,
                            FaultPlan, TrafficProfile, build_farm,
                            generate_requests, make_scheduler,
                            run_farm)
    from repro.farm.timeseries import FarmSeriesRecorder
    from repro.obs.slo import SloTarget
    from repro.obs.timeseries import (read_series_jsonl,
                                      write_series_jsonl)
    from repro.parallel import ThreadExecutor
    from repro.ssl.throughput import DEFAULT_CLOCK_HZ
    base, opt = _measured_pair()
    specs = build_farm(8, base, opt, extended_fraction=0.5)
    profile = TrafficProfile(arrival_rate=150.0, clients=64)
    n = 400
    second = DEFAULT_CLOCK_HZ
    # The farm_chaos plan, re-observed as a time series: the p99 spike
    # must be visible in the interval gauge while core 1 is down, and
    # the recovery must be visible after it returns.
    plan = FaultPlan(events=(
        FaultEvent(cycle=0.5 * second, kind="core_down", core=1),
        FaultEvent(cycle=1.5 * second, kind="core_up", core=1),
        FaultEvent(cycle=0.8 * second, kind="cache_flush", core=4),
        FaultEvent(cycle=0.6 * second, kind="degrade", core=2),
        FaultEvent(cycle=1.8 * second, kind="core_up", core=2),
    ), degraded_costs=base)
    slo = SloTarget(p99_ms=20.0, secure_mbps=1.0)
    config = FarmConfig(specs=tuple(specs), scheduler="preferential",
                        profile=profile, n_requests=n, seed=1,
                        faults=plan, slo=slo,
                        series_interval_seconds=0.05)

    def export(series) -> str:
        buf = io.StringIO()
        write_series_jsonl(series, buf)
        return buf.getvalue()

    chaos = run_farm(config)
    text = export(chaos.series)
    repeat = export(run_farm(config).series)
    # The exact round-trip: read back, re-export, byte-compare.
    reread = export(read_series_jsonl(io.StringIO(text)))
    # A sharded chaos series must not depend on the worker count.
    config4 = replace(config, shards=4)
    serial4 = export(run_farm(config4).series)
    with ThreadExecutor(2) as pool:
        par4 = export(run_farm(config4, executor=pool).series)
    # Live in-simulator sampling at shards=1 equals the post-hoc
    # derivation bit for bit (healthy run: the plain simulator path).
    requests = generate_requests(profile, n, seed=1)
    recorder = FarmSeriesRecorder(scheduler="preferential", n_cores=8,
                                  clock_hz=DEFAULT_CLOCK_HZ,
                                  interval_seconds=0.05)
    live_result = FarmSimulator(specs, make_scheduler("preferential"),
                                sampler=recorder).run(requests)
    recorder.finish(live_result.makespan_cycles)
    live = export(recorder.series)
    posthoc = export(run_farm(replace(
        config, faults=None, slo=None)).series)

    series = chaos.series
    key = "farm.interval.p99_ms{scheduler=preferential}"
    pre_spike = series.max_over_time(key, end_cycles=0.5 * second)
    spike = series.max_over_time(key, start_cycles=0.5 * second,
                                 end_cycles=1.5 * second)
    recovered = series.max_over_time(key, start_cycles=1.9 * second)
    return {
        "cores": 8.0, "requests": float(n),
        "samples": float(len(series.samples)),
        "events": float(len(series.events)),
        "fault_annotations": float(sum(
            1 for e in series.events if e.name.startswith("fault."))),
        "slo_alerts": float(sum(
            1 for e in series.events if e.name == "slo.alert")),
        # Hard zeros: the determinism contract, byte for byte.
        "repeat_export_diff": float(text != repeat),
        "roundtrip_diff": float(text != reread),
        "shard4.jobs_export_diff": float(serial4 != par4),
        "live_vs_posthoc_diff": float(live != posthoc),
        "p99_pre_spike_ms": pre_spike,
        "p99_spike_ms": spike,
        "p99_recovered_ms": recovered,
        # The outage is visible (spike well above the pre-fault tail)
        # and transient (post-recovery tail back near pre-fault).
        "p99_spike_ratio": (spike / pre_spike if pre_spike else 0.0),
        "p99_recovery_ratio": (recovered / spike if spike else 0.0),
    }


_CYCLES = Gate(tolerance=0.10, direction="lower")
_SPEEDUP = Gate(tolerance=0.10, direction="higher")
_EXACT_COUNT = Gate(tolerance=0.0, direction="higher")

register_scenario(Scenario(
    name="ssl_transaction",
    description="SSL handshake full/resumed cycle totals and "
                "speedups (Figure 8 model on measured costs)",
    run=_ssl_transaction_metrics,
    gates={
        "asymptotic_speedup": _SPEEDUP,
        "resumption_gain_base_1kb": _SPEEDUP,
        "speedup_1kb": _SPEEDUP,
        "speedup_16kb": _SPEEDUP,
        "base.full_1kb_cycles": _CYCLES,
        "base.full_16kb_cycles": _CYCLES,
        "base.resumed_1kb_cycles": _CYCLES,
        "base.resumed_16kb_cycles": _CYCLES,
        "opt.full_1kb_cycles": _CYCLES,
        "opt.full_16kb_cycles": _CYCLES,
        "opt.resumed_1kb_cycles": _CYCLES,
        "opt.resumed_16kb_cycles": _CYCLES,
    }))

register_scenario(Scenario(
    name="farm_mixed",
    description="4-core heterogeneous farm, 200 mixed-protocol "
                "requests at 60/s (seed 1), every scheduler",
    run=_farm_mixed_metrics,
    gates=dict(
        {"requests": _EXACT_COUNT, "cores": _EXACT_COUNT},
        **{f"{sched}.{metric}": gate
           for sched in ("round-robin", "least-loaded", "preferential")
           for metric, gate in (
               ("sessions_per_s", _SPEEDUP),
               ("secure_mbps", _SPEEDUP),
               ("p95_ms", Gate(tolerance=0.15, direction="lower")),
               ("p99_ms", Gate(tolerance=0.15, direction="lower")),
               ("cache_hit_rate", _SPEEDUP),
           )})))

register_scenario(Scenario(
    name="farm_tls13",
    description="4-core heterogeneous farm, 200 tls13-dominant "
                "requests at 60/s (seed 1): the registered TLS-1.3 "
                "model through the generic session-cache seam",
    run=_farm_tls13_metrics,
    gates=dict(
        {"requests": _EXACT_COUNT, "cores": _EXACT_COUNT,
         "tls13_requests": _EXACT_COUNT, "tls13_resumed": _EXACT_COUNT},
        **{f"{sched}.{metric}": gate
           for sched in ("round-robin", "least-loaded", "preferential")
           for metric, gate in (
               ("sessions_per_s", _SPEEDUP),
               ("secure_mbps", _SPEEDUP),
               ("p95_ms", Gate(tolerance=0.15, direction="lower")),
               ("p99_ms", Gate(tolerance=0.15, direction="lower")),
               ("tls13_cache_hits", _EXACT_COUNT),
               ("tls13_cache_hit_rate", _SPEEDUP),
           )})))

register_scenario(Scenario(
    name="farm_kasumi",
    description="4-core heterogeneous farm, 200 kasumi/wep link-layer "
                "requests at 80/s (seed 1): the registered KASUMI "
                "model priced by the kernel-measured per-byte rate",
    run=_farm_kasumi_metrics,
    gates=dict(
        {"requests": _EXACT_COUNT, "cores": _EXACT_COUNT,
         "kasumi_requests": _EXACT_COUNT,
         "kasumi_cycles_per_byte": _CYCLES},
        **{f"{sched}.{metric}": gate
           for sched in ("round-robin", "least-loaded", "preferential")
           for metric, gate in (
               ("sessions_per_s", _SPEEDUP),
               ("secure_mbps", _SPEEDUP),
               ("p95_ms", Gate(tolerance=0.15, direction="lower")),
               ("p99_ms", Gate(tolerance=0.15, direction="lower")),
           )})))

register_scenario(Scenario(
    name="characterize",
    description="cold + warm characterization: fit quality, "
                "per-routine predictions at n=32, cache behavior",
    run=_characterize_metrics,
    gates={
        "base.mean_fit_error_pct": Gate(tolerance=0.25,
                                        direction="lower"),
        "ext.mean_fit_error_pct": Gate(tolerance=0.25,
                                       direction="lower"),
        "base.cycles.mpn_addmul_1@32": _CYCLES,
        "base.cycles.mpn_mul_1@32": _CYCLES,
        "ext.cycles.mpn_addmul_1@32": _CYCLES,
        "ext.cycles.mpn_mul_1@32": _CYCLES,
        "cold.characterizations": Gate(tolerance=0.0,
                                       direction="lower"),
        "warm.memo_hits": _EXACT_COUNT,
    }))

register_scenario(Scenario(
    name="explore_parallel",
    description="serial-vs-parallel exploration agreement and "
                "persistent-store reuse over 5 strided candidates",
    run=_explore_parallel_metrics,
    gates={
        "candidates": _EXACT_COUNT,
        "best_cycles": Gate(tolerance=0.05, direction="lower"),
        "cold_evaluated": Gate(tolerance=0.0, direction="lower"),
        "warm_evaluated": Gate(tolerance=0.0, direction="lower"),
        "parallel_max_abs_cycle_diff": Gate(tolerance=0.0,
                                            direction="lower"),
        "parallel_label_agreement": _EXACT_COUNT,
        "warm_max_abs_cycle_diff": Gate(tolerance=0.0,
                                        direction="lower"),
    }))

register_scenario(Scenario(
    name="farm_sharded",
    description="64-core sharded farm: shards=1 bit-equivalence, "
                "executor independence at shards=8, bounded shard skew",
    run=_farm_sharded_metrics,
    gates={
        "cores": _EXACT_COUNT,
        "requests": _EXACT_COUNT,
        # Hard zero: sharding with one shard IS the plain simulator.
        "shards1.max_abs_metric_diff": Gate(tolerance=0.0,
                                            direction="lower"),
        "shard8.jobs_metric_diff": Gate(tolerance=0.0,
                                        direction="lower"),
        "shard8.completed": _EXACT_COUNT,
        "shard8.sessions_per_s": _SPEEDUP,
        "shard8.p99_ms": Gate(tolerance=0.15, direction="lower"),
        "shard8.sessions_per_s_skew": Gate(tolerance=0.10,
                                           direction="higher"),
        "shard8.p99_ms_skew": Gate(tolerance=0.25, direction="lower"),
    }))

register_scenario(Scenario(
    name="farm_events",
    description="heap vs calendar event queue at 16/64 cores: "
                "pop-order equivalence and calendar scan cost",
    run=_farm_events_metrics,
    gates={
        "c16.identical": _EXACT_COUNT,
        "c64.identical": _EXACT_COUNT,
        "c16.events": _EXACT_COUNT,
        "c64.events": _EXACT_COUNT,
        "c16.calendar.scans_per_pop": Gate(tolerance=0.25,
                                           direction="lower"),
        "c64.calendar.scans_per_pop": Gate(tolerance=0.25,
                                           direction="lower"),
        "c16.calendar.direct_searches": Gate(tolerance=0.0,
                                             direction="lower"),
        "c64.calendar.direct_searches": Gate(tolerance=0.0,
                                             direction="lower"),
    }))

register_scenario(Scenario(
    name="farm_chaos",
    description="8-core farm under a committed FaultPlan (core loss, "
                "cache flush, degradation): deterministic chaos, "
                "sharded repeatability, and runtime SLO gating",
    run=_farm_chaos_metrics,
    gates={
        "cores": _EXACT_COUNT,
        "requests": _EXACT_COUNT,
        "plan_events": _EXACT_COUNT,
        "fault_events": _EXACT_COUNT,
        "sessions_flushed": _EXACT_COUNT,
        # Hard zeros: chaos runs are as reproducible as healthy ones.
        "repeat_metric_diff": Gate(tolerance=0.0, direction="lower"),
        "shard4.jobs_metric_diff": Gate(tolerance=0.0,
                                        direction="lower"),
        "shard4.fault_events": _EXACT_COUNT,
        "completed": _EXACT_COUNT,
        "p99_ms": Gate(tolerance=0.15, direction="lower"),
        # The outage must be *visible* in the tail (>1x slowdown) --
        # a chaos layer that does not hurt is not injecting anything.
        "p99_slowdown": Gate(tolerance=0.15, direction="higher"),
        "slo_windows": _EXACT_COUNT,
        "slo_windows_violated": _EXACT_COUNT,
        "slo_violations": _EXACT_COUNT,
        "gen.events": _EXACT_COUNT,
    }))

register_scenario(Scenario(
    name="farm_timeseries",
    description="virtual-time series of the chaos run: byte-identical "
                "exports across repeats/jobs, live-vs-posthoc "
                "equality, JSONL round-trip, and the visible "
                "p99 spike + recovery around the core outage",
    run=_farm_timeseries_metrics,
    gates={
        "cores": _EXACT_COUNT,
        "requests": _EXACT_COUNT,
        "samples": _EXACT_COUNT,
        "events": _EXACT_COUNT,
        "fault_annotations": _EXACT_COUNT,
        "slo_alerts": _EXACT_COUNT,
        # Hard zeros: determinism is byte-level, not approximate.
        "repeat_export_diff": Gate(tolerance=0.0, direction="lower"),
        "roundtrip_diff": Gate(tolerance=0.0, direction="lower"),
        "shard4.jobs_export_diff": Gate(tolerance=0.0,
                                        direction="lower"),
        "live_vs_posthoc_diff": Gate(tolerance=0.0, direction="lower"),
        "p99_spike_ms": Gate(tolerance=0.15, direction="lower"),
        "p99_spike_ratio": Gate(tolerance=0.15, direction="higher"),
        "p99_recovery_ratio": Gate(tolerance=0.25, direction="lower"),
    }))

register_scenario(Scenario(
    name="modexp_candidates",
    description="macro-model exploration of 5 strided modexp "
                "candidates (512-bit RSA decrypt workload)",
    run=_modexp_candidates_metrics,
    gates={
        "candidates": _EXACT_COUNT,
        "correct_fraction": _EXACT_COUNT,
        "best_cycles": Gate(tolerance=0.05, direction="lower"),
        "median_cycles": _CYCLES,
    }))


# -- compiled fast paths (threaded-code ISS + flat mpn) ----------------------

def _timed(fn, reps: int = 3) -> float:
    """Mean wall seconds of ``reps`` calls after one warm-up call."""
    fn()
    start = time.perf_counter()
    for _ in range(reps):
        fn()
    return (time.perf_counter() - start) / reps


def _iss_compiled_metrics() -> Dict[str, object]:
    from repro.isa.kernels.modexp_kernel import ModExpKernel
    from repro.isa.kernels.mpn_kernels import MpnKernels
    from repro.isa.machine import backend_scope
    from repro.macromodel.characterize import characterize_platform
    from repro.mp.prng import DeterministicPrng

    # Kernel objects are shared across backends: the point of the
    # compiled backend is that one decoded/compiled program is reused.
    base = MpnKernels()
    ext = MpnKernels(4, 2)
    modexp = ModExpKernel()
    modulus = (1 << 256) - 189          # odd 256-bit modulus

    def kernel_menu():
        """Deterministic mixed-kernel run; returns full observables."""
        outputs = []
        prng = DeterministicPrng(0x15C0)
        for n in (4, 16, 32):
            up, vp = prng.next_limbs(n), prng.next_limbs(n)
            outputs.append(base.addmul_1(vp, up, prng.next_bits(32)))
            outputs.append(base.add_n(up, vp))
        up, vp = prng.next_limbs(8), prng.next_limbs(8)
        outputs.append(ext.addmul_1(vp, up, prng.next_bits(32)))
        value, cycles, profile = modexp.powm(0x1234567, 0x1B5, modulus)
        outputs.append((value, cycles, profile.total_cycles,
                        profile.instructions,
                        tuple(sorted(profile.local_cycles.items())),
                        tuple(sorted(profile.call_counts.items()))))
        return outputs

    observed = {}
    for backend in ("interp", "compiled"):
        with backend_scope(backend):
            observed[backend] = kernel_menu()
    mismatches = sum(1 for a, b in zip(observed["interp"],
                                       observed["compiled"]) if a != b)

    def cycles_total(outputs):
        return float(sum(entry[-1] if len(entry) == 3 else entry[1]
                         for entry in outputs[:-1])
                     + outputs[-1][1])

    interp_cycles = cycles_total(observed["interp"])
    compiled_cycles = cycles_total(observed["compiled"])

    # A trimmed characterization must produce identical model sets.
    # jobs=1 keeps the stimulus jobs in-process, where backend_scope
    # actually governs them (worker processes re-resolve from the env).
    def char_predictions(backend):
        with backend_scope(backend):
            models = characterize_platform(sizes=(4, 16), reps=1,
                                           modmul_overhead=False, jobs=1)
        return {routine: models.predict(routine, 16)
                for routine in models.routines()}

    char = {backend: char_predictions(backend)
            for backend in ("interp", "compiled")}
    char_diff = max(abs(char["interp"][r] - char["compiled"][r])
                    for r in char["interp"])

    # Wall-clock speedups are machine-dependent: extras, not baseline.
    powm = lambda: modexp.powm(0x1234567, 0x1B5, modulus)

    def char_wall(backend):
        with backend_scope(backend):
            return _timed(lambda: characterize_platform(jobs=1), 1)

    with backend_scope("interp"):
        t_powm_interp = _timed(powm)
    with backend_scope("compiled"):
        t_powm_compiled = _timed(powm)
    t_char_interp = char_wall("interp")
    t_char_compiled = char_wall("compiled")
    record_extra("modexp_speedup", t_powm_interp / t_powm_compiled)
    record_extra("characterize_speedup", t_char_interp / t_char_compiled)
    record_extra("modexp_interp_seconds", t_powm_interp)
    record_extra("modexp_compiled_seconds", t_powm_compiled)
    record_extra("characterize_interp_seconds", t_char_interp)
    record_extra("characterize_compiled_seconds", t_char_compiled)

    return {
        "runs": float(len(observed["interp"])),
        "backend_mismatches": float(mismatches),
        "cycles_diff": abs(interp_cycles - compiled_cycles),
        "characterize_max_abs_diff": char_diff,
        "interp.total_cycles": interp_cycles,
        "compiled.total_cycles": compiled_cycles,
        "modexp.cycles": float(observed["compiled"][-1][1]),
    }


def _mpn_fast_metrics() -> Dict[str, object]:
    from repro.crypto.modexp import ModExpEngine
    from repro.mp import mpn, mpn_fast, mpn_backend
    from repro.mp.hooks import traced
    from repro.mp.limb import RADIX16, RADIX32
    from repro.mp.prng import DeterministicPrng

    def traced_call(fn, *args):
        calls = []
        with traced(lambda name, params: calls.append(
                (name, tuple(sorted(params.items()))))):
            result = fn(*args)
        return result, calls

    cases = []
    for radix in (RADIX32, RADIX16):
        prng = DeterministicPrng(0xFA57 ^ radix.bits)
        vec = lambda n: prng.next_limbs(n, radix)
        for n in (3, 9):
            rp, up = vec(n), vec(n)
            v = prng.next_int(radix.base)
            cases.append((mpn.addmul_1, mpn_fast.addmul_1,
                          (rp, up, v, radix)))
            cases.append((mpn.mul_basecase, mpn_fast.mul_basecase,
                          (up, vec(n + 2), radix)))
            cases.append((mpn.sqr, mpn_fast.sqr, (up, radix)))
            cases.append((mpn.divrem_1, mpn_fast.divrem_1,
                          (up, 1 + prng.next_int(radix.mask), radix)))
            cases.append((mpn.divrem, mpn_fast.divrem,
                          (vec(n + 4), vec(n), radix)))
        cases.append((mpn.sqr, mpn_fast.sqr, (vec(40), radix)))
        # The crafted Knuth D6 add-back trigger (see test_mpn_fast.py).
        half = radix.base // 2
        cases.append((mpn.divrem, mpn_fast.divrem,
                      ([0, 0, half, half - 1], [radix.mask, 0, half],
                       radix)))

    value_mismatches = trace_mismatches = traced_calls = 0
    for reference, fast, args in cases:
        ref_result, ref_calls = traced_call(reference, *args)
        fast_result, fast_calls = traced_call(fast, *args)
        value_mismatches += ref_result != fast_result
        trace_mismatches += ref_calls != fast_calls
        traced_calls += len(fast_calls)

    # The add-back must fire exactly once per radix on the trigger.
    d6_addbacks = 0
    for radix in (RADIX32, RADIX16):
        half = radix.base // 2
        _, calls = traced_call(mpn_fast.divrem, [0, 0, half, half - 1],
                               [radix.mask, 0, half], radix)
        d6_addbacks += sum(1 for name, _ in calls if name == "mpn_add_n")

    # Wall-clock speedups (extras): the composite routines where the
    # flat forms win, plus an end-to-end Montgomery powm.
    prng = DeterministicPrng(0x5EED)
    big, big2 = prng.next_limbs(32), prng.next_limbs(32)
    num, den = prng.next_limbs(64), prng.next_limbs(32)
    record_extra("mul_basecase32_speedup",
                 _timed(lambda: mpn.mul_basecase(big, big2), 20)
                 / _timed(lambda: mpn_fast.mul_basecase(big, big2), 20))
    record_extra("divrem64_speedup",
                 _timed(lambda: mpn.divrem(num, den), 20)
                 / _timed(lambda: mpn_fast.divrem(num, den), 20))
    modulus = (1 << 512) - 569
    walls = {}
    for backend in ("reference", "fast"):
        engine = ModExpEngine()
        with mpn_backend(backend):
            walls[backend] = _timed(
                lambda: engine.powm(0x12345, 0x10001, modulus), 2)
    record_extra("powm_speedup", walls["reference"] / walls["fast"])

    return {
        "cases": float(len(cases)),
        "value_mismatches": float(value_mismatches),
        "trace_mismatches": float(trace_mismatches),
        "traced_calls": float(traced_calls),
        "d6_addback_traces": float(d6_addbacks),
    }


register_scenario(Scenario(
    name="iss_compiled",
    description="threaded-code ISS backend vs interpreter: "
                "bit-identical kernel/characterize results, cycle "
                "totals, wall-clock speedups in extras",
    run=_iss_compiled_metrics,
    gates={
        "runs": _EXACT_COUNT,
        # Hard zeros: the compiled backend IS the interpreter,
        # architecturally.
        "backend_mismatches": Gate(tolerance=0.0, direction="lower"),
        "cycles_diff": Gate(tolerance=0.0, direction="lower"),
        "characterize_max_abs_diff": Gate(tolerance=0.0,
                                          direction="lower"),
        "interp.total_cycles": _CYCLES,
        "compiled.total_cycles": _CYCLES,
        "modexp.cycles": _CYCLES,
    }))

register_scenario(Scenario(
    name="mpn_fast",
    description="flat mpn fast path vs reference loops: value and "
                "trace identity incl. the Knuth D6 add-back, "
                "wall-clock speedups in extras",
    run=_mpn_fast_metrics,
    gates={
        "cases": _EXACT_COUNT,
        # Hard zeros: the fast path must be value- and trace-exact.
        "value_mismatches": Gate(tolerance=0.0, direction="lower"),
        "trace_mismatches": Gate(tolerance=0.0, direction="lower"),
        "traced_calls": _EXACT_COUNT,
        "d6_addback_traces": _EXACT_COUNT,
    }))
