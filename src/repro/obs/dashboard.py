"""Self-contained HTML dashboards for exported time series.

:func:`render_dashboard_html` turns a :class:`~repro.obs.timeseries
.MetricsTimeSeries` into one HTML file with zero external assets: an
inline-SVG line chart per metric key, point events drawn as labelled
vertical rules on every chart, and a summary table.  The output is a
pure function of the series (no wall-clock timestamps, no random
ids), so regenerating the dashboard for the same exported series
writes byte-identical HTML -- the same determinism contract every
exporter in :mod:`repro.obs` keeps.
"""

from html import escape
from typing import Iterable, List, Optional

from repro.obs.timeseries import MetricsTimeSeries

__all__ = ["render_dashboard_html"]

_CHART_W = 640
_CHART_H = 120
_PAD = 8

_STYLE = """
body { font-family: monospace; background: #111; color: #ddd;
       margin: 2em; }
h1 { font-size: 1.2em; } h2 { font-size: 1.0em; color: #9cf; }
svg { background: #1a1a1a; border: 1px solid #333; }
table { border-collapse: collapse; margin: 1em 0; }
td, th { border: 1px solid #333; padding: 2px 8px; text-align: right; }
th { color: #9cf; } .event { color: #fc6; }
""".strip()


def _polyline(points, t_min, t_max, v_min, v_max) -> str:
    """SVG polyline coordinates for (t, v) pairs in chart space."""
    t_span = (t_max - t_min) or 1.0
    v_span = (v_max - v_min) or 1.0
    coords = []
    for t, v in points:
        x = _PAD + (t - t_min) / t_span * (_CHART_W - 2 * _PAD)
        y = (_CHART_H - _PAD
             - (v - v_min) / v_span * (_CHART_H - 2 * _PAD))
        coords.append(f"{x:.1f},{y:.1f}")
    return " ".join(coords)


def _chart(series: MetricsTimeSeries, key: str) -> List[str]:
    points = series.points(key)
    if not points:
        return []
    values = [v for _, v in points]
    t_min, t_max = points[0][0], points[-1][0]
    v_min, v_max = min(values), max(values)
    clock = series.clock_hz
    out = [f"<h2>{escape(key)}</h2>",
           f"<div>min {v_min:g} · max {v_max:g} · "
           f"last {values[-1]:g}</div>",
           f'<svg width="{_CHART_W}" height="{_CHART_H}" '
           f'viewBox="0 0 {_CHART_W} {_CHART_H}">']
    t_span = (t_max - t_min) or 1.0
    for event in series.events:
        if not t_min <= event.t_cycles <= t_max:
            continue
        x = _PAD + ((event.t_cycles - t_min) / t_span
                    * (_CHART_W - 2 * _PAD))
        out.append(f'<line x1="{x:.1f}" y1="0" x2="{x:.1f}" '
                   f'y2="{_CHART_H}" stroke="#fc6" '
                   f'stroke-dasharray="2,3">'
                   f"<title>{escape(event.name)} @ "
                   f"{event.t_cycles / clock:.3f}s</title></line>")
    out.append(f'<polyline fill="none" stroke="#6cf" stroke-width="1.5" '
               f'points="{_polyline(points, t_min, t_max, v_min, v_max)}"'
               f" />")
    out.append("</svg>")
    return out


def render_dashboard_html(series: MetricsTimeSeries,
                          title: str = "repro soak dashboard",
                          keys: Optional[Iterable[str]] = None) -> str:
    """One self-contained HTML page: a chart per key plus the event
    table.  ``keys`` restricts (and orders) the charted metrics;
    the default charts every key the series carries."""
    chosen = list(keys) if keys is not None else series.keys()
    clock = series.clock_hz
    span_s = (series.samples[-1].t_cycles / clock
              if series.samples else 0.0)
    parts = ["<!DOCTYPE html>", "<html><head>",
             '<meta charset="utf-8">',
             f"<title>{escape(title)}</title>",
             f"<style>{_STYLE}</style>", "</head><body>",
             f"<h1>{escape(title)}</h1>",
             f"<div>{len(series.samples)} samples over "
             f"{span_s:.3f}s virtual · {len(series.events)} events"
             + (f" · {series.dropped} dropped" if series.dropped
                else "") + "</div>"]
    for key in chosen:
        parts.extend(_chart(series, key))
    if series.events:
        parts.append("<h2>events</h2><table>")
        parts.append("<tr><th>t (s)</th><th>event</th>"
                     "<th>attributes</th></tr>")
        for event in sorted(series.events,
                            key=lambda e: (e.t_cycles, e.name)):
            attrs = ", ".join(f"{k}={event.attrs[k]}"
                              for k in sorted(event.attrs))
            parts.append(
                f'<tr><td>{event.t_cycles / clock:.3f}</td>'
                f'<td class="event">{escape(event.name)}</td>'
                f"<td>{escape(attrs)}</td></tr>")
        parts.append("</table>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"
