"""Span-based structured tracing with a near-zero-cost disabled path.

A :class:`Span` is one named, timed unit of work with attributes; a
:class:`Tracer` collects spans (and point events) in emission order.
Two clock disciplines coexist:

- **virtual time** -- instrumented simulations (the farm) stamp spans
  explicitly via :meth:`Tracer.record` with their own deterministic
  cycle clock;
- **logical time** -- the :meth:`Tracer.span` context manager stamps
  entry/exit with a monotonically increasing step counter, so span
  ordering and nesting are reproducible without any wall-clock reads.

When tracing is off the process-global tracer *is* the shared
:data:`NULL_TRACER` singleton: hot loops compare ``tracer is
NULL_TRACER`` once and skip instrumentation entirely, and even a
call that slips through allocates nothing (the no-op context manager
is one shared object).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

_MISSING = object()


@dataclass
class Span:
    """One named, timed unit of work."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: Optional[float] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} not finished")
        return self.end - self.start

    def as_dict(self) -> Dict:
        return {"kind": "span", "span_id": self.span_id,
                "parent_id": self.parent_id, "name": self.name,
                "start": self.start, "end": self.end,
                "attrs": dict(self.attrs)}


@dataclass
class TraceEvent:
    """A point-in-time observation (queue depth sample, state change)."""

    name: str
    time: float
    span_id: Optional[int]
    attrs: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return {"kind": "event", "name": self.name, "time": self.time,
                "span_id": self.span_id, "attrs": dict(self.attrs)}


class _SpanContext:
    """Context manager finishing one logical-clock span."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._finish(self.span, error=exc_type is not None)
        return False


class Tracer:
    """Collects spans and events in deterministic emission order."""

    enabled = True

    def __init__(self):
        self.spans: List[Span] = []
        self.events: List[TraceEvent] = []
        self._records: List = []        # spans + events, emission order
        self._stack: List[Span] = []    # open logical-clock spans
        self._next_id = 1
        self._step = 0

    # -- logical-clock spans ---------------------------------------------

    def _tick(self) -> float:
        self._step += 1
        return float(self._step)

    def span(self, name: str, **attrs) -> _SpanContext:
        """Open a nested span on the logical step clock."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(span_id=self._next_id, parent_id=parent, name=name,
                    start=self._tick(), attrs=attrs)
        self._next_id += 1
        self._stack.append(span)
        return _SpanContext(self, span)

    def _finish(self, span: Span, error: bool = False) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        span.end = self._tick()
        if error:
            span.attrs["error"] = True
        self.spans.append(span)
        self._records.append(span)

    # -- explicit virtual-time records -----------------------------------

    def record(self, name: str, start: float, end: float,
               parent_id: Optional[int] = None, **attrs) -> Span:
        """Record a completed span with caller-supplied timestamps
        (the farm's cycle clock)."""
        span = Span(span_id=self._next_id, parent_id=parent_id,
                    name=name, start=start, end=end, attrs=attrs)
        self._next_id += 1
        self.spans.append(span)
        self._records.append(span)
        return span

    def open_virtual(self, name: str, start: float,
                     parent_id: Optional[int] = None, **attrs) -> Span:
        """Begin a virtual-clock span whose end is not yet known.

        The span gets its id immediately -- so children recorded while
        it is open can parent to it -- but is only appended to the
        trace when :meth:`close_virtual` stamps its end.  This is the
        parenting hook span-tree consumers (the profiler) rely on for
        explicitly-clocked simulations.
        """
        span = Span(span_id=self._next_id, parent_id=parent_id,
                    name=name, start=float(start), attrs=attrs)
        self._next_id += 1
        return span

    def close_virtual(self, span: Span, end: float) -> Span:
        """Finish a span opened with :meth:`open_virtual`."""
        span.end = float(end)
        self.spans.append(span)
        self._records.append(span)
        return span

    def event(self, name: str, time: float = _MISSING, **attrs) -> None:
        """Record a point event (logical clock unless ``time`` given)."""
        if time is _MISSING:
            time = self._tick()
        parent = self._stack[-1].span_id if self._stack else None
        ev = TraceEvent(name=name, time=time, span_id=parent, attrs=attrs)
        self.events.append(ev)
        self._records.append(ev)

    # -- export ----------------------------------------------------------

    def records(self) -> List:
        """Spans and events in the order they were emitted."""
        return list(self._records)

    def find_spans(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def clear(self) -> None:
        self.spans.clear()
        self.events.clear()
        self._records.clear()
        self._stack.clear()
        self._next_id = 1
        self._step = 0


class _NullSpanContext:
    """The one shared no-op context manager (allocates nothing)."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_CONTEXT = _NullSpanContext()


class NullTracer(Tracer):
    """Disabled tracing: every operation is a constant-cost no-op."""

    enabled = False

    def span(self, name: str, **attrs) -> _NullSpanContext:
        return _NULL_CONTEXT

    def record(self, name: str, start: float, end: float,
               parent_id: Optional[int] = None, **attrs) -> None:
        return None

    def open_virtual(self, name: str, start: float,
                     parent_id: Optional[int] = None, **attrs) -> None:
        return None

    def close_virtual(self, span, end: float) -> None:
        return None

    def event(self, name: str, time: float = _MISSING, **attrs) -> None:
        return None


#: The process-wide disabled tracer.  Hot paths use ``tracer is
#: NULL_TRACER`` as their "is tracing on?" check -- one identity
#: comparison, no attribute lookups, no allocation.
NULL_TRACER = NullTracer()

_global_tracer: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The process-global tracer (:data:`NULL_TRACER` when disabled)."""
    return _global_tracer


def configure_tracing(tracer: Optional[Tracer] = None) -> Tracer:
    """Enable tracing globally; installs (and returns) ``tracer`` or a
    fresh :class:`Tracer`."""
    global _global_tracer
    _global_tracer = tracer if tracer is not None else Tracer()
    return _global_tracer


def reset_tracing() -> None:
    """Disable tracing globally (back to the no-op singleton)."""
    global _global_tracer
    _global_tracer = NULL_TRACER


def tracing_enabled() -> bool:
    return _global_tracer is not NULL_TRACER
