"""Exporters: JSON-lines event logs and metrics summaries.

The trace file format is one JSON object per line, in emission order:
spans as ``{"kind": "span", ...}`` and point events as ``{"kind":
"event", ...}``.  Keys are sorted and nothing is timestamped with wall
clock, so a seeded run writes a byte-identical log every time.
:func:`read_events_jsonl` is the inverse -- it rebuilds a
:class:`~repro.obs.trace.Tracer` from a log file, which is how the
``profile`` CLI subcommand analyses traces offline.

:func:`render_metrics` renders a registry as a human-readable table
(default) or in the Prometheus text exposition format
(``format="prometheus"``): ``name{label="v"} value`` samples, with
histograms expanded into cumulative ``_bucket``/``_sum``/``_count``
series, so external scrapers ingest a metrics dump without custom
parsing.
"""

import json
import re
from typing import Dict, List, Optional, TextIO, Union

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import Span, TraceEvent, Tracer


def write_events_jsonl(tracer: Tracer,
                       destination: Union[str, TextIO]) -> int:
    """Write the tracer's records to ``destination`` (path or file
    object) as JSON lines; returns the number of records written."""
    records = tracer.records()
    if hasattr(destination, "write"):
        fh, close = destination, False
    else:
        fh, close = open(destination, "w"), True
    try:
        for record in records:
            fh.write(json.dumps(record.as_dict(), sort_keys=True) + "\n")
    finally:
        if close:
            fh.close()
    return len(records)


def read_events_jsonl(source: Union[str, TextIO]) -> Tracer:
    """Rebuild a :class:`Tracer` from a JSON-lines event log.

    Span ids, parent links, timestamps, and emission order are
    preserved, so ``write_events_jsonl(read_events_jsonl(path))``
    round-trips byte-identically and the profiler can reconstruct the
    span tree from a file exactly as from the live tracer.
    """
    if hasattr(source, "read"):
        lines = source.read().splitlines()
    else:
        with open(source) as fh:
            lines = fh.read().splitlines()
    tracer = Tracer()
    max_id = 0
    for line in lines:
        if not line.strip():
            continue
        payload = json.loads(line)
        if payload["kind"] == "span":
            span = Span(span_id=payload["span_id"],
                        parent_id=payload["parent_id"],
                        name=payload["name"], start=payload["start"],
                        end=payload["end"], attrs=dict(payload["attrs"]))
            tracer.spans.append(span)
            tracer._records.append(span)
            max_id = max(max_id, span.span_id)
        elif payload["kind"] == "event":
            event = TraceEvent(name=payload["name"],
                               time=payload["time"],
                               span_id=payload["span_id"],
                               attrs=dict(payload["attrs"]))
            tracer.events.append(event)
            tracer._records.append(event)
        else:
            raise ValueError(f"unknown record kind {payload['kind']!r}")
    tracer._next_id = max_id + 1
    return tracer


def metrics_summary(registry: Optional[MetricsRegistry] = None) -> Dict:
    """The JSON form of a registry (the CLI's ``--metrics`` payload)."""
    registry = registry if registry is not None else get_registry()
    return registry.as_dict()


def _prom_name(name: str) -> str:
    """A legal Prometheus metric name (dots etc. become underscores)."""
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_escape(value) -> str:
    """Escape a label value per the text exposition format: backslash
    first (so the other escapes survive), then quote, then newline."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _prom_label_str(labels) -> str:
    """``{k="v",...}`` with value escaping, or '' when unlabelled."""
    if not labels:
        return ""
    rendered = ",".join(
        '{}="{}"'.format(_prom_name(key), _prom_escape(value))
        for key, value in labels)
    return "{" + rendered + "}"


def _render_prometheus(registry: MetricsRegistry,
                       timestamp_ms: Optional[int] = None) -> str:
    # Explicit timestamps (milliseconds, appended per sample line) let
    # the /metrics soak endpoint expose *virtual* time to a scraper
    # instead of the scrape wall clock.
    stamp = "" if timestamp_ms is None else f" {int(timestamp_ms)}"
    lines: List[str] = []
    typed = set()
    for name, labels, instrument in registry.items():
        payload = instrument.as_dict()
        kind = payload["type"]
        metric = _prom_name(name)
        if metric not in typed:
            lines.append(f"# TYPE {metric} {kind}")
            typed.add(metric)
        if kind in ("counter", "gauge"):
            lines.append(f"{metric}{_prom_label_str(labels)} "
                         f"{payload['value']:g}{stamp}")
            continue
        # Histogram: cumulative buckets, then sum and count.
        cumulative = 0
        for edge, count in zip(payload["edges"],
                               payload["bucket_counts"]):
            cumulative += count
            bucket_labels = tuple(labels) + (("le", f"{edge:g}"),)
            lines.append(f"{metric}_bucket{_prom_label_str(bucket_labels)}"
                         f" {cumulative}{stamp}")
        inf_labels = tuple(labels) + (("le", "+Inf"),)
        lines.append(f"{metric}_bucket{_prom_label_str(inf_labels)} "
                     f"{payload['count']}{stamp}")
        lines.append(f"{metric}_sum{_prom_label_str(labels)} "
                     f"{payload['sum']:g}{stamp}")
        lines.append(f"{metric}_count{_prom_label_str(labels)} "
                     f"{payload['count']}{stamp}")
    return "\n".join(lines)


def render_metrics(registry: Optional[MetricsRegistry] = None,
                   format: str = "text",
                   timestamp_ms: Optional[int] = None) -> str:
    """Render a registry: ``format="text"`` (one instrument per line,
    human-readable) or ``format="prometheus"`` (text exposition;
    ``timestamp_ms`` stamps every sample line with an explicit
    millisecond timestamp -- virtual time, for the soak endpoint)."""
    registry = registry if registry is not None else get_registry()
    if format == "prometheus":
        return _render_prometheus(registry, timestamp_ms=timestamp_ms)
    if timestamp_ms is not None:
        raise ValueError("timestamp_ms requires format='prometheus'")
    if format != "text":
        raise ValueError(f"unknown metrics format {format!r} "
                         f"(expected 'text' or 'prometheus')")
    lines = []
    for key, payload in registry.as_dict().items():
        kind = payload["type"]
        if kind == "histogram":
            mean = (payload["sum"] / payload["count"]
                    if payload["count"] else 0.0)
            lines.append(f"{key:52s} histogram count={payload['count']} "
                         f"mean={mean:.3f} min={payload['min']} "
                         f"max={payload['max']}")
        else:
            lines.append(f"{key:52s} {kind} {payload['value']:g}")
    return "\n".join(lines)
