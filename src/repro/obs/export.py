"""Exporters: JSON-lines event logs and metrics summaries.

The trace file format is one JSON object per line, in emission order:
spans as ``{"kind": "span", ...}`` and point events as ``{"kind":
"event", ...}``.  Keys are sorted and nothing is timestamped with wall
clock, so a seeded run writes a byte-identical log every time.
"""

import json
from typing import Dict, Optional, TextIO, Union

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import Tracer


def write_events_jsonl(tracer: Tracer,
                       destination: Union[str, TextIO]) -> int:
    """Write the tracer's records to ``destination`` (path or file
    object) as JSON lines; returns the number of records written."""
    records = tracer.records()
    if hasattr(destination, "write"):
        fh, close = destination, False
    else:
        fh, close = open(destination, "w"), True
    try:
        for record in records:
            fh.write(json.dumps(record.as_dict(), sort_keys=True) + "\n")
    finally:
        if close:
            fh.close()
    return len(records)


def metrics_summary(registry: Optional[MetricsRegistry] = None) -> Dict:
    """The JSON form of a registry (the CLI's ``--metrics`` payload)."""
    registry = registry if registry is not None else get_registry()
    return registry.as_dict()


def render_metrics(registry: Optional[MetricsRegistry] = None) -> str:
    """Human-readable one-instrument-per-line metrics summary."""
    registry = registry if registry is not None else get_registry()
    lines = []
    for key, payload in registry.as_dict().items():
        kind = payload["type"]
        if kind == "histogram":
            mean = (payload["sum"] / payload["count"]
                    if payload["count"] else 0.0)
            lines.append(f"{key:52s} histogram count={payload['count']} "
                         f"mean={mean:.3f} min={payload['min']} "
                         f"max={payload['max']}")
        else:
            lines.append(f"{key:52s} {kind} {payload['value']:g}")
    return "\n".join(lines)
