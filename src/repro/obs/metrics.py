"""The deterministic metrics registry.

Three instrument kinds cover everything the layers report:

- :class:`Counter`   -- monotone event counts (cache hits, handshakes);
- :class:`Gauge`     -- last-written values (fit errors, utilizations);
- :class:`Histogram` -- distributions over *fixed* bucket edges, so
  the bucketing of two identical runs is byte-identical (no dynamic
  rebinning, no wall-clock dependence).

Instruments are keyed by ``(name, labels)`` where labels are an
immutable sorted tuple of ``(key, value)`` pairs; :meth:`MetricsRegistry
.as_dict` serializes everything in sorted order, which is what makes
metrics payloads diffable across runs and safe to assert on in tests.
"""

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Fixed latency bucket edges in milliseconds (upper bounds; the last
#: bucket is open-ended).  Chosen to straddle the farm's observed p50
#: to p99 range across core counts.
DEFAULT_LATENCY_MS_EDGES = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
                            200.0, 500.0, 1000.0, 2000.0, 5000.0)

LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Dict[str, object]) -> LabelsKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def as_dict(self) -> Dict:
        return {"type": "counter", "value": self.value}


@dataclass
class Gauge:
    """A last-write-wins value."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta

    def as_dict(self) -> Dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Counts over fixed bucket edges plus sum/count/min/max.

    ``edges`` are inclusive upper bounds; one extra open-ended bucket
    catches everything above the last edge.  The edges are frozen at
    construction -- determinism over adaptivity.
    """

    def __init__(self, edges: Sequence[float] = DEFAULT_LATENCY_MS_EDGES):
        if not edges or list(edges) != sorted(edges):
            raise ValueError("histogram edges must be non-empty and sorted")
        self.edges: Tuple[float, ...] = tuple(float(e) for e in edges)
        self.bucket_counts: List[int] = [0] * (len(self.edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.edges, value)] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper edge of the bucket holding the ``q``-quantile
        observation (a deterministic, conservative estimate)."""
        if not 0 < q <= 1:
            raise ValueError("q must be in (0, 1]")
        if not self.count:
            return 0.0
        rank = max(1, int(q * self.count + 0.999999))
        seen = 0
        for i, n in enumerate(self.bucket_counts):
            seen += n
            if seen >= rank:
                return (self.edges[i] if i < len(self.edges)
                        else (self.max if self.max is not None else 0.0))
        return self.max if self.max is not None else 0.0

    def as_dict(self) -> Dict:
        return {"type": "histogram", "edges": list(self.edges),
                "bucket_counts": list(self.bucket_counts),
                "count": self.count, "sum": self.sum,
                "min": self.min, "max": self.max}


class MetricsRegistry:
    """Instruments keyed by ``(name, labels)``, serialized sorted."""

    def __init__(self):
        self._counters: Dict[Tuple[str, LabelsKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelsKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelsKey], Histogram] = {}

    # -- instrument accessors (created on first use) ---------------------

    def counter(self, name: str, **labels) -> Counter:
        key = (name, _labels_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        key = (name, _labels_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str,
                  edges: Sequence[float] = DEFAULT_LATENCY_MS_EDGES,
                  **labels) -> Histogram:
        key = (name, _labels_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(edges)
        elif instrument.edges != tuple(float(e) for e in edges):
            raise ValueError(f"histogram {name!r} already registered "
                             f"with different edges")
        return instrument

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

    def items(self) -> Iterable[Tuple[str, LabelsKey, object]]:
        """All instruments as ``(name, labels, instrument)``, sorted."""
        merged = []
        for table in (self._counters, self._gauges, self._histograms):
            merged.extend((name, labels, inst)
                          for (name, labels), inst in table.items())
        return sorted(merged, key=lambda item: (item[0], item[1]))

    def as_dict(self) -> Dict:
        """JSON-ready mapping: ``name{label=value,...}`` -> instrument."""
        out = {}
        for name, labels, instrument in self.items():
            if labels:
                rendered = ",".join(f"{k}={v}" for k, v in labels)
                out[f"{name}{{{rendered}}}"] = instrument.as_dict()
            else:
                out[name] = instrument.as_dict()
        return out

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


# -- the process-global default registry ------------------------------------

_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry instrumented layers write to."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the global registry (tests, CLI isolation); returns it."""
    global _default_registry
    _default_registry = registry
    return registry


def reset_metrics() -> MetricsRegistry:
    """Fresh global registry (equivalent to a new process)."""
    return set_registry(MetricsRegistry())
