"""Deterministic parallel sweep execution.

The paper's headline methodology win is *evaluation throughput*:
macro-model-driven native execution explored 450+ modexp candidates in
hours instead of ISS-weeks.  The sweeps that remain in this
reproduction (candidate exploration, platform characterization, A-D
curve formulation) are embarrassingly parallel, so this module gives
them one shared fan-out substrate whose results are **element-for-
element identical to a serial run**:

- work is partitioned by :func:`chunked` -- deterministic, contiguous
  chunk boundaries that depend only on the item count and the job
  count, never on timing;
- task functions are pure: workers receive picklable payloads and
  return plain values (no shared mutable state, no global registries);
- results are merged in **submission order** regardless of completion
  order, so ``executor.map(fn, tasks)`` returns exactly what a serial
  ``[fn(t) for t in tasks]`` would;
- completion callbacks (used for incremental result-store flushes) may
  fire in completion order, but never influence the merged output.

Three executors implement one ``map`` surface: :class:`SerialExecutor`
(the default -- zero new failure modes), :class:`ThreadExecutor`
(in-process; useful for tests and GIL-released workloads), and
:class:`ProcessExecutor` (the real fan-out across cores).
:func:`get_executor` selects one from an explicit ``jobs`` count, the
``$REPRO_JOBS`` environment variable, or defaults to serial.

Observability: every ``map`` runs under a ``parallel.map`` span and
publishes ``parallel.chunks_scheduled`` / ``parallel.items`` counters
plus a ``parallel.worker_utilization`` gauge (worker-busy seconds over
``jobs * elapsed``), so ``repro profile`` can attribute the fan-out.
"""

import os
import time
from concurrent import futures as _futures
from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.obs import get_registry, get_tracer

__all__ = ["CHUNKS_PER_JOB", "EXECUTOR_ENV", "Executor", "JOBS_ENV",
           "ProcessExecutor", "SerialExecutor", "ThreadExecutor",
           "chunked", "chunk_bounds", "executor_scope", "get_executor",
           "resolve_jobs"]

#: Environment variable supplying the default worker count.
JOBS_ENV = "REPRO_JOBS"

#: Environment variable forcing an executor kind (serial|thread|process).
EXECUTOR_ENV = "REPRO_EXECUTOR"

#: Chunks submitted per worker: >1 so per-item cost variance load-
#: balances, small enough that per-chunk overhead stays negligible.
CHUNKS_PER_JOB = 4


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """The effective worker count: explicit ``jobs``, else ``$REPRO_JOBS``,
    else 1 (serial)."""
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"${JOBS_ENV} must be an integer, got {raw!r}") from None
    jobs = int(jobs)
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    return jobs


def chunk_bounds(n_items: int, jobs: int,
                 chunks_per_job: int = CHUNKS_PER_JOB
                 ) -> List[Tuple[int, int]]:
    """Deterministic contiguous ``(start, end)`` chunk boundaries.

    A pure function of ``(n_items, jobs, chunks_per_job)`` -- never of
    timing -- so a parallel run partitions work identically every time
    (and a serial run is the single chunk ``[(0, n_items)]``).
    """
    if n_items <= 0:
        return []
    if jobs <= 1:
        return [(0, n_items)]
    n_chunks = min(n_items, jobs * max(1, chunks_per_job))
    size, extra = divmod(n_items, n_chunks)
    bounds = []
    start = 0
    for index in range(n_chunks):
        end = start + size + (1 if index < extra else 0)
        bounds.append((start, end))
        start = end
    return bounds


def chunked(items: Sequence, jobs: int,
            chunks_per_job: int = CHUNKS_PER_JOB) -> List[List]:
    """Split ``items`` into the deterministic chunks of
    :func:`chunk_bounds` (contiguous, order-preserving)."""
    items = list(items)
    return [items[start:end]
            for start, end in chunk_bounds(len(items), jobs,
                                           chunks_per_job)]


def _timed_call(fn: Callable, task) -> Tuple[float, object]:
    """Run one task and measure its wall time (module-level so
    :class:`ProcessExecutor` can pickle it)."""
    start = time.perf_counter()
    result = fn(task)
    return time.perf_counter() - start, result


class Executor:
    """One ``map`` surface over serial, thread, and process back ends.

    :meth:`map` preserves task order in its result list no matter the
    completion order, so any caller is byte-compatible with a serial
    run.  ``on_result(index, result)`` fires as results *complete*
    (serial: in order) -- callers use it for incremental flushes and
    progress, never for ordering.
    """

    kind = "abstract"
    jobs = 1

    def map(self, fn: Callable, tasks: Sequence,
            on_result: Optional[Callable[[int, object], None]] = None,
            label: str = "map") -> List:
        tasks = list(tasks)
        registry = get_registry()
        registry.counter("parallel.chunks_scheduled",
                         kind=self.kind).inc(len(tasks))
        start = time.perf_counter()
        with get_tracer().span("parallel.map", label=label,
                               kind=self.kind, jobs=self.jobs,
                               chunks=len(tasks)):
            results, busy = self._run(fn, tasks, on_result)
        elapsed = time.perf_counter() - start
        if tasks and elapsed > 0:
            registry.gauge("parallel.worker_utilization",
                           kind=self.kind).set(
                min(1.0, busy / (self.jobs * elapsed)))
        return results

    def _run(self, fn, tasks, on_result):
        raise NotImplementedError

    def close(self) -> None:
        """Release pooled workers (no-op for the serial executor)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class SerialExecutor(Executor):
    """In-order, in-process execution -- the default everywhere."""

    kind = "serial"
    jobs = 1

    def _run(self, fn, tasks, on_result):
        results = []
        busy = 0.0
        for index, task in enumerate(tasks):
            wall, result = _timed_call(fn, task)
            busy += wall
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results, busy


class _PoolExecutor(Executor):
    """Shared submit/merge logic over a ``concurrent.futures`` pool."""

    _pool_cls = None

    def __init__(self, jobs: int):
        self.jobs = resolve_jobs(jobs)
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._pool_cls(max_workers=self.jobs)
        return self._pool

    def _run(self, fn, tasks, on_result):
        pool = self._ensure_pool()
        pending = {pool.submit(_timed_call, fn, task): index
                   for index, task in enumerate(tasks)}
        slots: List = [None] * len(tasks)
        busy = 0.0
        for future in _futures.as_completed(pending):
            index = pending[future]
            wall, result = future.result()
            busy += wall
            slots[index] = result
            if on_result is not None:
                on_result(index, result)
        return slots, busy

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None


class ThreadExecutor(_PoolExecutor):
    """Thread-pool fan-out (in-process; the mp tracing hook is
    thread-local, so concurrent estimations never cross-charge)."""

    kind = "thread"
    _pool_cls = _futures.ThreadPoolExecutor


class ProcessExecutor(_PoolExecutor):
    """Process-pool fan-out across cores.  Task functions must be
    module-level (picklable) and payloads plain data."""

    kind = "process"
    _pool_cls = _futures.ProcessPoolExecutor


def get_executor(jobs: Optional[int] = None,
                 kind: Optional[str] = None) -> Executor:
    """Build the executor for ``jobs`` workers.

    ``jobs`` resolves through :func:`resolve_jobs` (``$REPRO_JOBS``
    when unset); ``kind`` defaults to ``$REPRO_EXECUTOR`` and then to
    ``process`` for ``jobs > 1`` (serial otherwise).
    """
    jobs = resolve_jobs(jobs)
    if kind is None:
        kind = os.environ.get(EXECUTOR_ENV, "").strip().lower() or None
    if kind is None:
        kind = "process" if jobs > 1 else "serial"
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(jobs)
    if kind == "process":
        return ProcessExecutor(jobs)
    raise ValueError(f"unknown executor kind {kind!r}; "
                     f"expected serial, thread, or process")


@contextmanager
def executor_scope(jobs: Optional[int] = None,
                   executor: Optional[Executor] = None
                   ) -> Iterator[Executor]:
    """Yield ``executor`` if given, else build one for ``jobs`` and
    close it on exit (callers never leak a pool they did not create)."""
    if executor is not None:
        yield executor
        return
    own = get_executor(jobs)
    try:
        yield own
    finally:
        own.close()
