"""Area-delay (A-D) curves.

An A-D curve (paper Figure 5) captures the local tradeoff a custom
instruction offers one library routine: each :class:`DesignPoint` is a
set of custom instructions, the hardware area they add, and the cycle
count the routine achieves with them.  The original software routine is
the zero-area point.
"""

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional

from repro.isa.extensions import CustomInstruction


@dataclass(frozen=True)
class DesignPoint:
    """One point on an A-D curve."""

    cycles: float
    area: float
    instructions: FrozenSet[str] = frozenset()

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance: no worse on both axes, better on one."""
        return (self.cycles <= other.cycles and self.area <= other.area
                and (self.cycles < other.cycles or self.area < other.area))

    def label(self) -> str:
        if not self.instructions:
            return "base"
        return "+".join(sorted(self.instructions))


class ADCurve:
    """An A-D curve for one routine (or a combined subgraph)."""

    def __init__(self, name: str, points: Iterable[DesignPoint] = (),
                 catalogue: Optional[Dict[str, CustomInstruction]] = None):
        self.name = name
        self.points: List[DesignPoint] = list(points)
        #: instruction name -> object, for area recomputation on merges
        self.catalogue: Dict[str, CustomInstruction] = dict(catalogue or {})

    def add(self, point: DesignPoint) -> None:
        self.points.append(point)

    def __iter__(self) -> Iterator[DesignPoint]:
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    @property
    def base_point(self) -> DesignPoint:
        """The zero-area (pure software) point."""
        for point in self.points:
            if not point.instructions:
                return point
        raise ValueError(f"curve {self.name!r} has no base point")

    def pareto(self) -> "ADCurve":
        """Prune Pareto-dominated points; result sorted by area."""
        kept: List[DesignPoint] = []
        for candidate in sorted(self.points, key=lambda p: (p.area, p.cycles)):
            if any(other.dominates(candidate) for other in self.points
                   if other is not candidate):
                continue
            # Drop exact duplicates.
            if any(k.cycles == candidate.cycles and k.area == candidate.area
                   and k.instructions == candidate.instructions for k in kept):
                continue
            kept.append(candidate)
        return ADCurve(self.name, kept, self.catalogue)

    def best_under_area(self, area_budget: float) -> DesignPoint:
        """Fastest point within the area budget."""
        feasible = [p for p in self.points if p.area <= area_budget]
        if not feasible:
            raise ValueError(
                f"no design point of {self.name!r} fits area {area_budget}")
        return min(feasible, key=lambda p: (p.cycles, p.area))

    def scaled(self, calls: int, local_cycles: float = 0.0) -> "ADCurve":
        """Curve for `calls` invocations plus fixed local cycles (Eq. 1)."""
        return ADCurve(
            self.name,
            [DesignPoint(cycles=local_cycles + calls * p.cycles,
                         area=p.area, instructions=p.instructions)
             for p in self.points],
            self.catalogue)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ADCurve({self.name!r}, {len(self.points)} points)"
