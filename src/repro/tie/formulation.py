"""Custom instruction formulation: measured A-D curves (paper §3.3).

For each accelerable library routine, sweep the candidate custom
instructions' hardware resources on the simulator and record the
(area, cycles) points -- the paper's Figure 5(a)/(b) curves for
``mpn_add_n`` and ``mpn_addmul_1``, plus round-granularity curves for
the DES and AES kernels.

Each resource width's kernel simulation is independent, so every sweep
fans its width points across workers through :mod:`repro.parallel`
(``jobs``/``executor`` parameters).  Operand stimuli are drawn *before*
the fan-out and shipped to workers, and points are merged in width
order -- so any worker count yields the identical curve.  Workers
return plain ``(cycles)`` measurements; instruction objects (whose
semantics are closures, hence unpicklable) are built only in the
parent.
"""

from typing import Dict, Optional, Sequence

from repro.isa.custom import (ADD_WIDTHS, AES_VARIANTS, DES_SBOX_UNITS,
                              MAC_WIDTHS, make_aesark, make_aesld,
                              make_aesrnd, make_aesrndl, make_aesst,
                              make_desld, make_desround, make_desst,
                              make_vaddc)
from repro.isa.kernels.aes_kernels import AesKernel
from repro.isa.kernels.des_kernels import DesKernel
from repro.isa.kernels.mpn_kernels import MpnKernels
from repro.mp.prng import DeterministicPrng
from repro.parallel import executor_scope
from repro.tie.adcurve import ADCurve, DesignPoint

_DES_KEY = bytes.fromhex("133457799BBCDFF1")
_DES_BLOCK = bytes.fromhex("0123456789ABCDEF")
_AES_KEY = bytes(range(16))
_AES_BLOCK = bytes.fromhex("00112233445566778899aabbccddeeff")


def _addn_point(spec: dict) -> float:
    """Cycles for add_n at one adder-array width (picklable worker)."""
    kern = MpnKernels(add_width=spec["width"], mac_width=1)
    return float(kern.add_n(spec["up"], spec["vp"])[2])


def _addmul_point(spec: dict) -> float:
    """Cycles for addmul_1 at one (adder, MAC) width pair."""
    kern = MpnKernels(add_width=spec["width"],
                      mac_width=spec["mac_width"])
    return float(kern.addmul_1(spec["rp"], spec["up"], spec["v"])[2])


def _des_point(units: int) -> float:
    """Cycles for one DES block with ``units`` S-box units."""
    _, cycles = DesKernel(extended=True,
                          sbox_units=units).crypt_block(_DES_BLOCK,
                                                        _DES_KEY)
    return float(cycles)


def _aes_point(variant) -> float:
    """Cycles for one AES block at one (sbox, mixcol) unit variant."""
    sbox_units, mixcol_units = variant
    _, cycles = AesKernel(extended=True, sbox_units=sbox_units,
                          mixcol_units=mixcol_units
                          ).encrypt_block(_AES_BLOCK, _AES_KEY)
    return float(cycles)


def adcurve_mpn_add_n(n: int = 16,
                      widths: Sequence[int] = ADD_WIDTHS,
                      prng: Optional[DeterministicPrng] = None,
                      jobs: Optional[int] = None,
                      executor=None) -> ADCurve:
    """Measured A-D curve for ``mpn_add_n`` on n-limb operands.

    Mirrors paper Figure 5(a): the base software point plus one point
    per adder-array width (the add_2/add_4/add_8/add_16 family).
    """
    if prng is None:
        prng = DeterministicPrng(0xADD)
    up, vp = prng.next_limbs(n), prng.next_limbs(n)
    curve = ADCurve(f"mpn_add_n[n={n}]")
    _, _, base_cycles = MpnKernels().add_n(up, vp)
    curve.add(DesignPoint(cycles=float(base_cycles), area=0.0))
    specs = [{"up": up, "vp": vp, "width": width} for width in widths]
    with executor_scope(jobs, executor) as pool:
        points = pool.map(_addn_point, specs, label="adcurve.add_n")
    for width, cycles in zip(widths, points):
        instr = make_vaddc(width)
        curve.catalogue[instr.name] = instr
        curve.add(DesignPoint(cycles=cycles, area=instr.area,
                              instructions=frozenset({instr.name})))
    return curve


def _multiplier_unit():
    """The shared one-limb multiplier bank of the MAC datapath.

    The paper's Figure 5(b)/6 decomposes the ``mpn_addmul_1``
    acceleration as (add_X adder array) + (mul_1 multiplier): the adder
    array is *shared* with the ``mpn_add_n`` instruction family, which
    is what makes the Cartesian-product reduction effective.  We mirror
    that accounting here.
    """
    from repro.isa.extensions import CustomInstruction
    return CustomInstruction(
        name="macmul_1", signature="rrr", semantics=lambda m, a: None,
        latency=2, resources={"mul32": 1, "reg_bit": 32, "control": 1},
        description="one-limb multiplier bank shared by the MAC datapath")


def adcurve_mpn_addmul_1(n: int = 16,
                         widths: Sequence[int] = ADD_WIDTHS,
                         prng: Optional[DeterministicPrng] = None,
                         jobs: Optional[int] = None,
                         executor=None) -> ADCurve:
    """Measured A-D curve for ``mpn_addmul_1`` (paper Figure 5(b)).

    Design points are {add_X adder array + mul_1 multiplier} as in the
    paper; cycle counts are measured with the fused ``vmac`` kernel at
    the matching accumulate width.
    """
    if prng is None:
        prng = DeterministicPrng(0x3AC)
    rp, up = prng.next_limbs(n), prng.next_limbs(n)
    v = prng.next_bits(32)
    curve = ADCurve(f"mpn_addmul_1[n={n}]")
    mul_unit = _multiplier_unit()
    curve.catalogue[mul_unit.name] = mul_unit
    _, _, base_cycles = MpnKernels().addmul_1(rp, up, v)
    curve.add(DesignPoint(cycles=float(base_cycles), area=0.0))
    mac_top = max(MAC_WIDTHS)
    specs = [{"rp": rp, "up": up, "v": v, "width": width,
              "mac_width": min(width, mac_top)} for width in widths]
    with executor_scope(jobs, executor) as pool:
        points = pool.map(_addmul_point, specs, label="adcurve.addmul_1")
    for width, cycles in zip(widths, points):
        adders = make_vaddc(width)
        curve.catalogue[adders.name] = adders
        curve.add(DesignPoint(
            cycles=cycles, area=adders.area + mul_unit.area,
            instructions=frozenset({adders.name, mul_unit.name})))
    return curve


def adcurve_des_block(sbox_sweep: Sequence[int] = DES_SBOX_UNITS,
                      jobs: Optional[int] = None,
                      executor=None) -> ADCurve:
    """A-D curve for a DES block: base software vs round-instruction
    variants with 1..8 S-box units (plus the shared load/store perm
    instructions, whose area is included)."""
    curve = ADCurve("des_block")
    _, base_cycles = DesKernel().crypt_block(_DES_BLOCK, _DES_KEY)
    curve.add(DesignPoint(cycles=float(base_cycles), area=0.0))
    ld, st = make_desld(), make_desst()
    with executor_scope(jobs, executor) as pool:
        points = pool.map(_des_point, list(sbox_sweep),
                          label="adcurve.des")
    for units, cycles in zip(sbox_sweep, points):
        rnd = make_desround(units)
        names = frozenset({ld.name, rnd.name, st.name})
        for instr in (ld, rnd, st):
            curve.catalogue[instr.name] = instr
        area = ld.area + rnd.area + st.area
        curve.add(DesignPoint(cycles=cycles, area=area,
                              instructions=names))
    return curve


def adcurve_aes_block(variants: Sequence = AES_VARIANTS,
                      jobs: Optional[int] = None,
                      executor=None) -> ADCurve:
    """A-D curve for an AES-128 block across round-unit variants."""
    curve = ADCurve("aes_block")
    _, base_cycles = AesKernel().encrypt_block(_AES_BLOCK, _AES_KEY)
    curve.add(DesignPoint(cycles=float(base_cycles), area=0.0))
    ld, ark, st = make_aesld(), make_aesark(), make_aesst()
    with executor_scope(jobs, executor) as pool:
        points = pool.map(_aes_point, [tuple(v) for v in variants],
                          label="adcurve.aes")
    for (sbox_units, mixcol_units), cycles in zip(variants, points):
        rnd = make_aesrnd(sbox_units, mixcol_units)
        lastrnd = make_aesrndl(sbox_units)
        for instr in (ld, ark, rnd, lastrnd, st):
            curve.catalogue[instr.name] = instr
        names = frozenset({ld.name, ark.name, rnd.name, lastrnd.name,
                           st.name})
        area = sum(i.area for i in (ld, ark, rnd, lastrnd, st))
        curve.add(DesignPoint(cycles=cycles, area=area,
                              instructions=names))
    return curve


def leaf_curves_for_modexp(n: int = 16, jobs: Optional[int] = None,
                           executor=None) -> Dict[str, ADCurve]:
    """The leaf A-D curves the global selection propagates through the
    modular exponentiation call graph: mpn_add_n-style adds don't
    appear in the Montgomery inner loop, so the hot curve is addmul."""
    with executor_scope(jobs, executor) as pool:
        return {
            "mpn_addmul_1": adcurve_mpn_addmul_1(n, executor=pool),
            "mpn_add_n": adcurve_mpn_add_n(n, executor=pool),
        }
