"""Global custom instruction selection (paper Section 3.4).

Combines the leaf routines' A-D curves bottom-up through the annotated
call graph into a composite curve for the root, applying:

- **Equation 1**: cycles(f) = local_cycles(f) + sum over children of
  calls * cycles(child), per combination of child design points;
- **instruction sharing**: the union of the children's instruction
  sets, so shared hardware is counted once;
- **dominance reduction**: within an instruction family, a wider unit
  subsumes a narrower one (``add_4`` dominates ``add_2``), collapsing
  equivalent Cartesian-product entries (paper Figure 6's 25 -> 9);
- **Pareto pruning** at every node (paper Figure 5c's point P1).

The final step picks the fastest root design point within an area
budget.
"""

import re
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.isa.extensions import CustomInstruction
from repro.tie.adcurve import ADCurve, DesignPoint
from repro.tie.callgraph import CallGraph

_FAMILY_RE = re.compile(r"^([A-Za-z]+(?:_[A-Za-z]+)*?)((?:_\d+)+)$")


def instruction_family(name: str) -> Tuple[str, Tuple[int, ...]]:
    """Split an instruction name into (family, width parameters).

    ``vaddc_8`` -> ("vaddc", (8,)); ``aesrnd_8_2`` -> ("aesrnd", (8, 2));
    names without numeric suffixes are their own family with no params.
    """
    match = _FAMILY_RE.match(name)
    if not match:
        return name, ()
    params = tuple(int(p) for p in match.group(2).split("_")[1:])
    return match.group(1), params


def _subsumes(a: str, b: str) -> bool:
    """True if instruction ``a`` can perform ``b``'s job at least as fast
    (same family, every width parameter >=)."""
    fam_a, par_a = instruction_family(a)
    fam_b, par_b = instruction_family(b)
    return (fam_a == fam_b and len(par_a) == len(par_b) and par_a != ()
            and all(x >= y for x, y in zip(par_a, par_b)))


def reduce_instruction_set(names: Iterable[str]) -> FrozenSet[str]:
    """Drop instructions subsumed by a wider family member (sharing +
    dominance, paper Figure 6)."""
    names = set(names)
    reduced = {n for n in names
               if not any(other != n and _subsumes(other, n)
                          for other in names)}
    return frozenset(reduced)


def _set_area(names: FrozenSet[str],
              catalogue: Dict[str, CustomInstruction]) -> float:
    total = 0.0
    for name in names:
        instr = catalogue.get(name)
        if instr is None:
            raise KeyError(f"instruction {name!r} missing from the catalogue")
        total += instr.area
    return total


def combine_curves(name: str, children: List[Tuple[ADCurve, int]],
                   local_cycles: float = 0.0,
                   reduce: bool = True,
                   pareto: bool = True) -> ADCurve:
    """Combine child A-D curves under one parent (Eq. 1 + Fig. 6).

    ``children`` is a list of (curve, call count).  ``reduce=False``
    disables dominance reduction (for the ablation bench, to expose the
    Cartesian blowup the paper's technique avoids).
    """
    catalogue: Dict[str, CustomInstruction] = {}
    for curve, _ in children:
        catalogue.update(curve.catalogue)

    combos: Dict[FrozenSet[str], float] = {frozenset(): local_cycles}
    raw_count = 1
    for curve, calls in children:
        next_combos: Dict[FrozenSet[str], float] = {}
        raw_count *= max(1, len(curve.points))
        for inst_set, cycles in combos.items():
            for point in curve.points:
                union = inst_set | point.instructions
                key = reduce_instruction_set(union) if reduce \
                    else frozenset(union)
                total = cycles + calls * point.cycles
                # Equivalent entries collapse; keep the best delay.
                if key not in next_combos or total < next_combos[key]:
                    next_combos[key] = total
        combos = next_combos

    result = ADCurve(name, catalogue=catalogue)
    for inst_set, cycles in combos.items():
        result.add(DesignPoint(cycles=cycles,
                               area=_set_area(inst_set, catalogue),
                               instructions=inst_set))
    result.raw_combination_count = raw_count  # type: ignore[attr-defined]
    return result.pareto() if pareto else result


def propagate(graph: CallGraph, leaf_curves: Dict[str, ADCurve],
              node: Optional[str] = None, reduce: bool = True,
              pareto: bool = True) -> ADCurve:
    """Bottom-up propagation of A-D curves to (sub)graph roots.

    Leaves with a curve contribute it; leaves without one contribute a
    single zero-area point at their measured local cycles.
    """
    name = node or graph.root
    if name in leaf_curves:
        return leaf_curves[name]
    cg_node = graph.nodes[name]
    if not cg_node.children:
        return ADCurve(name, [DesignPoint(cycles=cg_node.local_cycles,
                                          area=0.0)])
    children = [(propagate(graph, leaf_curves, callee, reduce, pareto), calls)
                for callee, calls in cg_node.children]
    return combine_curves(name, children, cg_node.local_cycles,
                          reduce=reduce, pareto=pareto)


def select_point(graph: CallGraph, leaf_curves: Dict[str, ADCurve],
                 area_budget: float) -> Tuple[DesignPoint, ADCurve]:
    """Propagate to the root and pick the fastest point within budget."""
    root_curve = propagate(graph, leaf_curves)
    return root_curve.best_under_area(area_budget), root_curve
