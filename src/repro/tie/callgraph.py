"""Annotated function call graphs (paper Figure 4).

Nodes are functions with their *local* cycles (computation not spent in
callees); edges carry call counts.  Graphs come from two sources: built
programmatically for synthetic studies, or extracted from an ISS
:class:`~repro.isa.machine.Profile` of a real run (the paper's Figure 4
is the profile of an optimized modular exponentiation).
"""

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass
class CallGraphNode:
    """One function in the annotated call graph."""

    name: str
    local_cycles: float = 0.0
    #: (callee name, number of calls) pairs
    children: List[Tuple[str, int]] = field(default_factory=list)

    def add_child(self, callee: str, calls: int) -> None:
        self.children.append((callee, calls))


class CallGraph:
    """A rooted, annotated call graph."""

    def __init__(self, root: str):
        self.root = root
        self.nodes: Dict[str, CallGraphNode] = {}

    def node(self, name: str) -> CallGraphNode:
        if name not in self.nodes:
            self.nodes[name] = CallGraphNode(name)
        return self.nodes[name]

    def add_edge(self, caller: str, callee: str, calls: int) -> None:
        self.node(caller).add_child(callee, calls)
        self.node(callee)

    def set_local_cycles(self, name: str, cycles: float) -> None:
        self.node(name).local_cycles = cycles

    def leaves(self) -> List[str]:
        return sorted(name for name, node in self.nodes.items()
                      if not node.children)

    def validate_acyclic(self) -> None:
        """Raise if the graph has a cycle (propagation needs a DAG)."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {name: WHITE for name in self.nodes}

        def visit(name: str) -> None:
            color[name] = GRAY
            for callee, _ in self.nodes[name].children:
                if color[callee] == GRAY:
                    raise ValueError(f"call graph cycle through {callee!r}")
                if color[callee] == WHITE:
                    visit(callee)
            color[name] = BLACK

        visit(self.root)

    def total_cycles(self, name: Optional[str] = None) -> float:
        """Pure-software cycle count of the subgraph rooted at ``name``."""
        name = name or self.root
        node = self.nodes[name]
        total = node.local_cycles
        for callee, calls in node.children:
            total += calls * self.total_cycles(callee)
        return total

    @classmethod
    def from_profile(cls, profile, root: str,
                     truncate_at: Iterable[str] = ()) -> "CallGraph":
        """Build from an ISS profile, optionally truncating below the
        given functions (the paper truncates Figure 4 at the leaf
        routines that receive custom instructions)."""
        truncate = set(truncate_at)
        graph = cls(root)
        # Average call counts per single invocation of the caller.
        invocations = dict(profile.call_counts)
        invocations.setdefault(root, 1)
        for (caller, callee), calls in sorted(profile.call_edges.items()):
            if caller == "<entry>" or caller in truncate:
                continue
            per_invocation = max(1, round(calls / max(1, invocations.get(caller, 1))))
            graph.add_edge(caller, callee, per_invocation)
        for name in graph.nodes:
            count = max(1, invocations.get(name, 1))
            graph.set_local_cycles(
                name, profile.local_cycles.get(name, 0) / count)
        return graph

    def render(self) -> str:
        """Human-readable indented rendering (for the Figure 4 bench)."""
        lines: List[str] = []
        seen = set()

        def walk(name: str, depth: int, calls: int) -> None:
            node = self.nodes[name]
            prefix = "  " * depth
            call_note = f" x{calls}" if depth else ""
            lines.append(f"{prefix}{name}{call_note}  "
                         f"(local {node.local_cycles:.0f} cyc)")
            if name in seen:
                return
            seen.add(name)
            for callee, count in node.children:
                walk(callee, depth + 1, count)

        walk(self.root, 0, 1)
        return "\n".join(lines)
