"""Custom-instruction formulation and global selection (paper §3.3-3.4).

- :mod:`repro.tie.adcurve`     -- area-delay (A-D) curves: sets of
  (area, cycles, instruction-set) design points with Pareto operations.
- :mod:`repro.tie.callgraph`   -- annotated function call graphs
  (nodes weighted with local cycles, edges with call counts), built by
  hand or from an ISS profile (paper Figure 4).
- :mod:`repro.tie.formulation` -- produces A-D curves for the library
  leaf routines by sweeping custom-instruction hardware resources on
  the simulator (paper Figure 5a/5b).
- :mod:`repro.tie.selection`   -- bottom-up combination of A-D curves
  through the call graph with instruction sharing and dominance
  reduction of the Cartesian product (paper Figures 5c and 6), and
  final selection under an area constraint.
"""

from repro.tie.adcurve import ADCurve, DesignPoint
from repro.tie.callgraph import CallGraph, CallGraphNode
from repro.tie.selection import (combine_curves, propagate, select_point,
                                 reduce_instruction_set)

__all__ = ["ADCurve", "DesignPoint", "CallGraph", "CallGraphNode",
           "combine_curves", "propagate", "select_point",
           "reduce_instruction_set"]
