"""Legacy setup shim: the offline environment lacks the `wheel` package,
so editable installs use the setup.py code path (pip --no-use-pep517)."""

from setuptools import setup

setup()
